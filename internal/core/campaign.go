package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"ntdts/internal/inject"
	"ntdts/internal/stats"
	"ntdts/internal/telemetry"
)

// SetResult is the outcome of one workload set: every fault of the fault
// list injected into one workload (paper Figure 1's middle loop).
type SetResult struct {
	Workload      string      `json:"workload"`
	Supervision   string      `json:"supervision"`
	WatchdVersion int         `json:"watchdVersion,omitempty"`
	ActivatedFns  int         `json:"activatedFns"` // Table 1 census
	FaultFreeSec  float64     `json:"faultFreeSec"` // calibration response time
	Runs          []RunResult `json:"runs"`         // injected faults only
	SkippedFns    int         `json:"skippedFns"`   // unactivated functions
	SkippedFaults int         `json:"skippedFaults"`

	// Quarantined lists the runs the campaign supervisor gave up on
	// (empty on unsupervised campaigns); Partial marks a set cut short by
	// an interrupt or the quarantine budget — its Runs slice still spans
	// the full plan, with zero-valued entries for runs never executed.
	Quarantined []QuarantineEntry `json:"quarantined,omitempty"`
	Partial     bool              `json:"partial,omitempty"`

	// Telemetry holds the per-run collectors in deterministic order —
	// the calibration run first, then every run at its fault-list
	// position — when the campaign executed with telemetry enabled.
	// Merged exports (JSONL/CSV traces, metrics) are byte-identical
	// across Parallelism settings. Excluded from the JSON archive.
	Telemetry *telemetry.Set `json:"-"`

	// Dispatch describes how the fleet executor behaved when the
	// campaign ran sharded (nil otherwise). Excluded from the JSON
	// archive so archives stay byte-identical at any fleet shape.
	Dispatch *DispatchStats `json:"-"`

	// Replay summarizes the divergence oracle's elision decisions when
	// the set was produced by a replay campaign (nil otherwise).
	// Excluded from the JSON archive so a replayed archive stays
	// byte-identical to a from-scratch one.
	Replay *ReplayStats `json:"-"`
}

// Injected returns the number of faults that actually fired.
func (s *SetResult) Injected() int {
	n := 0
	for _, r := range s.Runs {
		if r.Injected {
			n++
		}
	}
	return n
}

// Distribution is the five-outcome breakdown over injected faults —
// the bars of Figures 2, 3 and 5.
type Distribution struct {
	Total  int                `json:"total"`
	Counts map[string]int     `json:"counts"`
	Pct    map[string]float64 `json:"pct"`
}

// Distribution computes the outcome distribution of a set.
func (s *SetResult) Distribution() Distribution {
	d := Distribution{
		Counts: make(map[string]int, 5),
		Pct:    make(map[string]float64, 5),
	}
	for _, r := range s.Runs {
		if !r.Injected {
			continue
		}
		d.Counts[r.Outcome.String()]++
		d.Total++
	}
	for _, o := range AllOutcomes() {
		d.Pct[o.String()] = stats.Percent(d.Counts[o.String()], d.Total)
	}
	return d
}

// FailurePct is the headline failure percentage (unity minus coverage).
func (s *SetResult) FailurePct() float64 {
	return s.Distribution().Pct[Failure.String()]
}

// OutcomePct returns the percentage of one outcome.
func (s *SetResult) OutcomePct(o Outcome) float64 {
	return s.Distribution().Pct[o.String()]
}

// ResponseTimes returns the response-time sample for one outcome class,
// with failures optionally split by whether any reply arrived (Figure 4
// omits no-reply failures — their response time is unbounded).
func (s *SetResult) ResponseTimes(o Outcome, wrongReplyOnly bool) []float64 {
	var xs []float64
	for _, r := range s.Runs {
		if !r.Injected || r.Outcome != o || !r.Completed {
			continue
		}
		if o == Failure && wrongReplyOnly && !r.GotResponse {
			continue
		}
		xs = append(xs, r.ResponseSec)
	}
	return xs
}

// Campaign executes the full fault list against one workload.
//
// Construct campaigns with NewCampaign and functional options; the
// fields are unexported (the PR 5 deprecation of the struct-literal
// form has run its course) and external packages reach the few values
// they need through accessors.
type Campaign struct {
	runner *Runner
	// types is the corruption set (defaults to the paper's three).
	types []inject.FaultType
	// invocation selects which invocation of each function to inject
	// (default 1, the paper's choice; the paper notes that injecting
	// further invocations "produced similar results").
	invocation int
	// paperFaithfulSkips runs one probe per unactivated function before
	// skipping its remaining faults, exactly as the paper's tool did,
	// instead of applying the skip from the calibration run.
	paperFaithfulSkips bool
	// parallelism is the number of workers executing runs concurrently
	// (0 defaults to runtime.GOMAXPROCS(0); 1 is strictly sequential).
	// Every run builds its own isolated kernel and results land at their
	// fault-list position, so any worker count yields a SetResult
	// byte-identical to the sequential sweep.
	parallelism int
	// progress, when non-nil, receives (done, total) after every run.
	// Invocations are serialized and done increases strictly by one,
	// regardless of parallelism.
	progress func(done, total int)
	// supervise, when non-nil, routes every run through the campaign
	// supervisor: wall-clock watchdog, panic quarantine, bounded retries,
	// the results journal, and replay-on-resume.
	supervise *Supervisor
	// specs, when non-empty, replaces the generated catalog sweep with an
	// explicit fault list (the dts fault-list-file path).
	specs []inject.FaultSpec
	// shards, when > 1, fans the job list out over that many worker
	// processes through a ShardExecutor; results merge byte-identical to
	// an unsharded run.
	shards int
	// shardExec overrides the process-registered ShardExecutor.
	shardExec ShardExecutor
	// replay, when non-nil, resolves jobs from a recorded source
	// campaign before execution (see WithReplay).
	replay ReplaySource
}

// Runner returns the campaign's workload runner.
func (c *Campaign) Runner() *Runner { return c.runner }

// Shards returns the configured worker-process fan-out (<= 1 means
// in-process execution).
func (c *Campaign) Shards() int { return c.shards }

// HasProgress reports whether a progress callback is registered, so
// executors can skip progress bookkeeping entirely when nobody listens.
func (c *Campaign) HasProgress() bool { return c.progress != nil }

// ReportProgress invokes the progress callback (no-op when none is
// registered). Callers serialize invocations themselves.
func (c *Campaign) ReportProgress(done, total int) {
	if c.progress != nil {
		c.progress(done, total)
	}
}

// Prepared is a campaign after calibration and planning, ready to
// execute: the frozen job list plus everything Assemble needs to build
// the SetResult. The coordinator/worker split lives on this boundary —
// a ShardExecutor partitions Jobs and Assemble merges the results.
type Prepared struct {
	c *Campaign
	// Calib is the fault-free calibration result.
	Calib *RunResult
	// Jobs is the campaign's ordered job list; results land at the
	// matching index.
	Jobs []PlanJob
	// Faults counts non-probe jobs (the progress total).
	Faults int
	// Activated is the calibration run's activation census: the set of
	// win32 functions the fault-free workload actually called. The
	// replay oracle consults it to prove a fault can never arm.
	Activated map[string]bool
	// SkippedFns and SkippedFaults carry the catalog-walk skip census
	// (zero for explicit spec lists).
	SkippedFns    int
	SkippedFaults int
}

// Prepare runs the fault-free calibration pass and lays out the job
// list: one run per (activated function × parameter × fault type) for a
// catalog campaign, or the explicit Specs list verbatim. The skip rule
// is the paper's, applied eagerly from the calibration run.
func (c *Campaign) Prepare() (*Prepared, error) {
	types := c.types
	if len(types) == 0 {
		types = inject.AllFaultTypes()
	}
	invocation := c.invocation
	if invocation == 0 {
		invocation = 1
	}
	activated, calib, err := c.runner.ActivationScan()
	if err != nil {
		return nil, fmt.Errorf("activation scan: %w", err)
	}
	p := &Prepared{c: c, Calib: calib, Activated: activated}
	if len(c.specs) > 0 {
		jobs := make([]PlanJob, len(c.specs))
		for i, s := range c.specs {
			jobs[i] = PlanJob{Spec: s}
		}
		p.Jobs, p.Faults = jobs, len(jobs)
		return p, nil
	}
	if calib.Outcome != NormalSuccess {
		return nil, fmt.Errorf("calibration run did not succeed: %v", calib.Outcome)
	}
	// The fault list is a pure function of the activation set (plus the
	// corruption types and skip mode), so the catalog walk is memoized
	// per process and the job list executes on the worker pool.
	plan := planFor(activated, types, invocation, c.paperFaithfulSkips)
	p.Jobs, p.Faults = plan.jobs, plan.faults
	p.SkippedFns, p.SkippedFaults = plan.skippedFns, plan.skippedFaults
	return p, nil
}

// SiteGroup is one activation site's slice of the fault plan: the indices
// of every job arming at the same (function, invocation), with the prefix
// tier the runner resumes those runs from.
type SiteGroup struct {
	Site inject.Site
	// Tier is the deepest snapshot the runner can fork for this site.
	Tier SnapshotTier
	// Jobs indexes into Prepared.Jobs, in plan order.
	Jobs []int
}

// SiteGroups partitions the job list by activation site, in plan order of
// each site's first job. Runs in one group share their entire execution
// prefix up to fault activation; the snapshot-fork engine resumes all of
// them from the same captured prefix (Tier reports how deep that capture
// reaches — TierBoot today, since live goroutine stacks bound how much of
// a run is capturable).
func (p *Prepared) SiteGroups() []SiteGroup {
	index := make(map[inject.Site]int)
	var groups []SiteGroup
	for i, j := range p.Jobs {
		site := j.Spec.Site()
		gi, ok := index[site]
		if !ok {
			gi = len(groups)
			index[site] = gi
			groups = append(groups, SiteGroup{Site: site, Tier: p.c.runner.SnapshotAt(site)})
		}
		groups[gi].Jobs = append(groups[gi].Jobs, i)
	}
	return groups
}

// Assemble builds the SetResult from the executed (possibly partial)
// run list. A supervisor stop (interrupt, quarantine budget) is
// graceful degradation: the partial set returns alongside the cause so
// the caller can report what finished; any other error voids the set.
func (p *Prepared) Assemble(runs []RunResult, runErr error) (*SetResult, error) {
	c := p.c
	set := &SetResult{
		Workload:      c.runner.Def.Name,
		Supervision:   c.runner.Def.Supervision.String(),
		ActivatedFns:  p.Calib.ActivatedFns,
		FaultFreeSec:  p.Calib.ResponseSec,
		SkippedFns:    p.SkippedFns,
		SkippedFaults: p.SkippedFaults,
	}
	if c.runner.Def.Supervision.String() == "watchd" {
		set.WatchdVersion = int(c.runner.Opts.WatchdVersion)
	}
	if runErr != nil {
		var budget *QuarantineBudgetError
		if c.supervise != nil && (errors.Is(runErr, ErrInterrupted) || errors.As(runErr, &budget)) {
			set.Runs = runs
			set.Partial = true
			set.Quarantined = c.supervise.Quarantined()
			if c.runner.Opts.Telemetry.Enabled {
				set.Telemetry = CollectTelemetry(p.Calib, runs)
			}
			return set, runErr
		}
		return nil, runErr
	}
	set.Runs = runs
	if c.supervise != nil {
		set.Quarantined = c.supervise.Quarantined()
	}
	if c.runner.Opts.Telemetry.Enabled {
		set.Telemetry = CollectTelemetry(p.Calib, runs)
	}
	return set, nil
}

// Run executes the campaign: Prepare, then the job list on the
// in-process worker pool — or, with Shards > 1, fanned out across
// worker processes by the ShardExecutor — then Assemble. Cancel ctx to
// stop between runs; a supervised campaign converts the cancellation
// into its partial-results ErrInterrupted contract.
func (c *Campaign) Run(ctx context.Context) (*SetResult, error) {
	p, err := c.Prepare()
	if err != nil {
		return nil, err
	}
	if c.replay != nil {
		if c.shards > 1 || c.supervise != nil {
			return nil, errors.New("campaign: replay is mutually exclusive with sharding and supervision")
		}
		return c.runReplay(ctx, p)
	}
	if c.shards > 1 {
		exec := c.shardExec
		if exec == nil {
			exec = registeredShardExecutor()
		}
		if exec == nil {
			return nil, errors.New("campaign: Shards > 1 but no ShardExecutor available (import ntdts/internal/shard)")
		}
		if c.supervise != nil {
			return nil, errors.New("campaign: sharding and supervision are mutually exclusive (each worker process already isolates harness faults; journal a shard-worker run instead)")
		}
		runs, runErr := exec.ExecuteShards(ctx, c, p)
		set, err := p.Assemble(runs, runErr)
		if set != nil {
			if dr, ok := exec.(DispatchReporter); ok {
				set.Dispatch = dr.DispatchStats()
			}
		}
		return set, err
	}
	if c.supervise != nil {
		if err := c.supervise.syncPlan(p.Jobs); err != nil {
			return nil, err
		}
	}
	runs, runErr := executeJobs(ctx, c.runner, p.Jobs, c.parallelism, p.Faults, c.progress, c.supervise)
	return p.Assemble(runs, runErr)
}

// ReplaySource resolves campaign jobs from a recorded source campaign.
// Resolve returns one entry per job in p.Jobs: a non-nil RunResult for
// every run the source proves cannot diverge under this campaign's
// substrate (the run is elided — its record is adopted verbatim), nil
// for every run that must re-execute. internal/replay provides the
// divergence oracle; the seam lives here so Campaign.Run can interleave
// elided and executed results at their plan positions.
type ReplaySource interface {
	Resolve(p *Prepared) ([]*RunResult, error)
}

// ReplayStats summarizes a replay campaign's elision decisions. It
// rides SetResult outside the JSON archive, which therefore stays
// byte-identical to a from-scratch campaign under the same substrate.
type ReplayStats struct {
	Total    int // jobs in the plan
	Elided   int // adopted from the source without re-execution
	Executed int // re-executed under the target substrate
}

// Rate returns the fraction of jobs elided.
func (s *ReplayStats) Rate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Elided) / float64(s.Total)
}

// runReplay executes the replay plan: jobs the ReplaySource resolves
// are adopted with provenance, the rest execute on the worker pool and
// scatter back to their plan positions.
func (c *Campaign) runReplay(ctx context.Context, p *Prepared) (*SetResult, error) {
	resolved, err := c.replay.Resolve(p)
	if err != nil {
		return nil, err
	}
	if len(resolved) != len(p.Jobs) {
		return nil, fmt.Errorf("campaign: replay source resolved %d jobs, plan has %d", len(resolved), len(p.Jobs))
	}
	runs := make([]RunResult, len(p.Jobs))
	var pending []PlanJob
	var pendingIdx []int
	for i, job := range p.Jobs {
		if r := resolved[i]; r != nil {
			rr := *r
			rr.Replayed, rr.Elided = true, true
			if job.Probe {
				rr.Skipped = true
			}
			runs[i] = rr
			continue
		}
		pending = append(pending, job)
		pendingIdx = append(pendingIdx, i)
	}
	stats := &ReplayStats{Total: len(p.Jobs), Elided: len(p.Jobs) - len(pending), Executed: len(pending)}
	if len(pending) > 0 {
		sub, runErr := executeJobs(ctx, c.runner, pending, c.parallelism, len(pending), c.progress, nil)
		if runErr != nil {
			return nil, runErr
		}
		for k, i := range pendingIdx {
			sub[k].Replayed = true
			runs[i] = sub[k]
		}
	}
	set, err := p.Assemble(runs, nil)
	if set != nil {
		set.Replay = stats
	}
	return set, err
}

// CollectTelemetry assembles the deterministic telemetry set for a
// campaign: the calibration run (when present) at index 0, then each
// run's collector at its fault-list position. Runs without a collector
// occupy their index with a nil entry so numbering is stable.
func CollectTelemetry(calib *RunResult, runs []RunResult) *telemetry.Set {
	set := telemetry.NewSet()
	if calib != nil {
		set.Append(calib.Telemetry)
	}
	for i := range runs {
		set.Append(runs[i].Telemetry)
	}
	return set
}

// Experiment is a series of workload sets (paper Figure 1's outer loop).
type Experiment struct {
	Sets []*SetResult `json:"sets"`
}

// Find returns the set for a workload/supervision pair.
func (e *Experiment) Find(workload, supervision string) (*SetResult, bool) {
	for _, s := range e.Sets {
		if s.Workload == workload && s.Supervision == supervision {
			return s, true
		}
	}
	return nil, false
}

// Workloads lists the distinct workload names in first-seen order.
func (e *Experiment) Workloads() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range e.Sets {
		if !seen[s.Workload] {
			seen[s.Workload] = true
			out = append(out, s.Workload)
		}
	}
	return out
}

// CommonInjected returns, for two sets, the run pairs whose fault specs
// were injected in both — Table 2's "counting only common faults" basis.
func CommonInjected(a, b *SetResult) (aRuns, bRuns []RunResult) {
	key := func(f inject.FaultSpec) string { return f.Key() }
	bByKey := make(map[string]RunResult, len(b.Runs))
	for _, r := range b.Runs {
		if r.Injected {
			bByKey[key(r.Fault)] = r
		}
	}
	var keys []string
	aByKey := make(map[string]RunResult, len(a.Runs))
	for _, r := range a.Runs {
		if !r.Injected {
			continue
		}
		k := key(r.Fault)
		if _, ok := bByKey[k]; ok {
			aByKey[k] = r
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		aRuns = append(aRuns, aByKey[k])
		bRuns = append(bRuns, bByKey[k])
	}
	return aRuns, bRuns
}
