package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"ntdts/internal/determinism"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/workload"
)

func apache1Campaign(par int, progress func(done, total int)) *Campaign {
	opts := []Option{WithParallelism(par)}
	if progress != nil {
		opts = append(opts, WithProgress(progress))
	}
	return NewCampaign(NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}), opts...)
}

// TestCampaignParallelDeterministic is the engine's core guarantee: any
// worker count yields a SetResult deep-equal to the sequential sweep,
// runs in fault-list order included.
func TestCampaignParallelDeterministic(t *testing.T) {
	run := func(par int) *SetResult {
		set, err := apache1Campaign(par, nil).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return set
	}
	seq := run(1)
	par := run(8)
	if len(seq.Runs) == 0 {
		t.Fatal("empty campaign")
	}
	determinism.AssertEqualSlices(t, "parallel campaign runs", par.Runs, seq.Runs, func(i int) string {
		return fmt.Sprintf("dts -config <Apache1/none> -fault %q -parallel 8", seq.Runs[i].Fault.String())
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("set results diverge outside Runs:\n seq: %+v\n par: %+v", seq, par)
	}
}

// TestCampaignParallelProgress exercises the serialized Progress contract
// under contention: the callback mutates shared state without its own
// locking (the race detector proves serialization), done increases
// strictly by one, and the final call is (total, total).
func TestCampaignParallelProgress(t *testing.T) {
	var calls []int
	var total int
	set, err := apache1Campaign(4, func(done, n int) {
		calls = append(calls, done)
		total = n
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != total || total != len(set.Runs) {
		t.Fatalf("%d progress calls, total %d, %d runs", len(calls), total, len(set.Runs))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("progress call %d reported done=%d; counter must increase strictly by one", i, done)
		}
	}
}

// TestCampaignParallelFaithfulSkips checks the probe path through the
// pool: paper-faithful campaigns stay deterministic under parallelism,
// probes keep their catalog-order positions ahead of the fault list, and
// probes stay invisible to Progress.
func TestCampaignParallelFaithfulSkips(t *testing.T) {
	run := func(par int) (*SetResult, int) {
		progressCalls := 0
		c := NewCampaign(NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}),
			WithFaultTypes(inject.ZeroBits),
			WithPaperFaithfulSkips(),
			WithParallelism(par),
			WithProgress(func(done, total int) { progressCalls++ }))
		set, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return set, progressCalls
	}
	seq, seqCalls := run(1)
	par, parCalls := run(6)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("paper-faithful campaign diverges under parallelism")
	}
	if seqCalls != parCalls {
		t.Fatalf("progress calls diverge: %d sequential, %d parallel", seqCalls, parCalls)
	}
	if probes := len(seq.Runs) - seqCalls; probes != seq.SkippedFns {
		t.Fatalf("%d probe runs invisible to progress, want %d", probes, seq.SkippedFns)
	}
}

// TestRunSpecsParallel checks the explicit-fault-list entry point (the
// dts -config path) against its sequential result.
func TestRunSpecsParallel(t *testing.T) {
	specs := []inject.FaultSpec{
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.ZeroBits},
		{Function: "GetVersionExA", Param: 0, Invocation: 1, Type: inject.OneBits},
		{Function: "CreateFileA", Param: 0, Invocation: 1, Type: inject.ZeroBits},
	}
	runner := NewRunner(workload.NewIIS(workload.Standalone), RunnerOptions{})
	seq, err := RunSpecs(context.Background(), runner, specs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSpecs(context.Background(), runner, specs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	determinism.AssertEqualSlices(t, "RunSpecs results", par, seq, func(i int) string {
		return fmt.Sprintf("dts -config <IIS/none> -fault %q -parallel 4", specs[i].String())
	})
	if len(seq) != len(specs) {
		t.Fatalf("%d results for %d specs", len(seq), len(specs))
	}
}

// TestRunSpecsFirstError checks deterministic error selection: when every
// run fails, the pool reports the lowest-indexed spec's error — the one a
// sequential sweep would have hit first — at any worker count.
func TestRunSpecsFirstError(t *testing.T) {
	failure := errors.New("client refused to start")
	def := workload.NewApache1(workload.Standalone)
	def.SpawnClient = func(k *ntsim.Kernel) (*ntsim.Process, *workload.Report, error) {
		return nil, nil, failure
	}
	specs := []inject.FaultSpec{
		{Function: "ReadFile", Param: 0, Invocation: 1, Type: inject.ZeroBits},
		{Function: "WriteFile", Param: 0, Invocation: 1, Type: inject.ZeroBits},
		{Function: "CloseHandle", Param: 0, Invocation: 1, Type: inject.ZeroBits},
		{Function: "CreateFileA", Param: 0, Invocation: 1, Type: inject.ZeroBits},
	}
	for _, par := range []int{1, 4} {
		_, err := RunSpecs(context.Background(), NewRunner(def, RunnerOptions{}), specs, par, nil)
		if err == nil {
			t.Fatalf("parallelism %d: no error from failing runs", par)
		}
		if !errors.Is(err, failure) {
			t.Fatalf("parallelism %d: error %v does not wrap the run failure", par, err)
		}
		want := "run " + specs[0].String()
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("parallelism %d: error %q does not name the first spec (%q)", par, got, want)
		}
	}
}

// TestPlanCacheReuse asserts the fault-plan memoization: two campaigns
// over the same activation set share one plan instance.
func TestPlanCacheReuse(t *testing.T) {
	activated := map[string]bool{"ReadFile": true, "WriteFile": true}
	types := inject.AllFaultTypes()
	a := planFor(activated, types, 1, false)
	b := planFor(map[string]bool{"WriteFile": true, "ReadFile": true}, types, 1, false)
	if a != b {
		t.Fatal("identical activation sets built distinct plans")
	}
	c := planFor(activated, types, 1, true)
	if a == c {
		t.Fatal("skip-mode change must not share a plan")
	}
	if a.faults == 0 || len(a.jobs) != a.faults {
		t.Fatalf("plan shape: %d jobs, %d faults", len(a.jobs), a.faults)
	}
}
