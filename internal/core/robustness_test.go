package core

import (
	"math/rand"
	"testing"

	"ntdts/internal/inject"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/workload"
)

// TestRobustnessRandomFaultStorm throws pseudo-random faults (seeded, so
// reproducible) from the full export catalog at every workload and asserts
// the harness invariants: runs never error, never leak simulated-code
// panics (Runner.Run checks Kernel.Panics), and always classify.
func TestRobustnessRandomFaultStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("fault storm is not short")
	}
	catalog := win32.Catalog()
	var injectable []win32.CatalogEntry
	for _, e := range catalog {
		if e.Params > 0 {
			injectable = append(injectable, e)
		}
	}
	rng := rand.New(rand.NewSource(0xD75))
	defs := []workload.Definition{
		workload.NewApache1(workload.Standalone),
		workload.NewApache2(workload.Watchd),
		workload.NewIIS(workload.MSCS),
		workload.NewSQL(workload.Watchd),
	}
	types := inject.AllFaultTypes()
	const perWorkload = 40
	for _, def := range defs {
		runner := NewRunner(def, RunnerOptions{})
		for i := 0; i < perWorkload; i++ {
			entry := injectable[rng.Intn(len(injectable))]
			spec := inject.FaultSpec{
				Function:   entry.Name,
				Param:      rng.Intn(entry.Params),
				Invocation: 1 + rng.Intn(2),
				Type:       types[rng.Intn(len(types))],
			}
			res, err := runner.Run(&spec)
			if err != nil {
				t.Fatalf("%s/%s fault %v: %v", def.Name, def.Supervision, spec, err)
			}
			if res.Outcome < NormalSuccess || res.Outcome > Failure {
				t.Fatalf("%s fault %v: unclassified outcome %d", def.Name, spec, res.Outcome)
			}
			if res.Injected && !res.Activated {
				t.Fatalf("%s fault %v: injected but not activated", def.Name, spec)
			}
		}
	}
}

// TestRobustnessEveryImplementedFunction exhaustively injects every
// (parameter, fault type) of every function the IIS workload activates —
// the densest corruption matrix — and asserts the same invariants.
func TestRobustnessEveryImplementedFunction(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive matrix is not short")
	}
	runner := NewRunner(workload.NewIIS(workload.Standalone), RunnerOptions{})
	activated, _, err := runner.ActivationScan()
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make(map[Outcome]int)
	for _, entry := range win32.Catalog() {
		if entry.Params == 0 || !activated[entry.Name] {
			continue
		}
		for p := 0; p < entry.Params; p++ {
			for _, typ := range inject.AllFaultTypes() {
				spec := inject.FaultSpec{Function: entry.Name, Param: p, Invocation: 1, Type: typ}
				res, err := runner.Run(&spec)
				if err != nil {
					t.Fatalf("fault %v: %v", spec, err)
				}
				outcomes[res.Outcome]++
			}
		}
	}
	// The matrix must produce a non-trivial mix: benign outcomes,
	// crashes that fail stand-alone, and at least some retries.
	if outcomes[NormalSuccess] == 0 || outcomes[Failure] == 0 {
		t.Fatalf("degenerate outcome mix: %v", outcomes)
	}
	t.Logf("outcome mix over the full IIS matrix: %v", outcomes)
}
