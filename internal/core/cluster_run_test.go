package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// clusterSpecs is a representative mixed plan: every scenario kind plus
// kernel faults, some node-addressed.
func clusterSpecs() []inject.FaultSpec {
	return []inject.FaultSpec{
		{Function: ClusterNodeCrashFunction, Invocation: 5, Type: inject.FlipBits},
		{Function: ClusterServiceCrashFunction, Invocation: 5, Type: inject.FlipBits, Node: 1},
		{Function: ClusterPartitionFunction, Param: 15, Invocation: 5, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.ZeroBits, Node: 1},
		{Function: "TransactNamedPipe", Param: 2, Invocation: 1, Type: inject.OneBits, Node: 2},
	}
}

func runClusterSet(t *testing.T, def workload.Definition, cfg ClusterConfig, specs []inject.FaultSpec, par int, freshBoot bool) *SetResult {
	t.Helper()
	opts := DefaultRunnerOptions()
	opts.Cluster = cfg
	opts.FreshBoot = freshBoot
	c := NewCampaign(NewRunner(def, opts), WithSpecs(specs), WithParallelism(par))
	set, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestClusterOneNodeEquivalence: a 1-node cluster is the same machine —
// a campaign over ordinary kernel faults produces an archive cmp-equal
// to the classic single-kernel path.
func TestClusterOneNodeEquivalence(t *testing.T) {
	def := workload.NewIIS(workload.MSCS)
	specs := []inject.FaultSpec{
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "WriteFile", Param: 1, Invocation: 1, Type: inject.ZeroBits},
		{Function: "TransactNamedPipe", Param: 2, Invocation: 1, Type: inject.OneBits},
	}
	classic := runClusterSet(t, def, ClusterConfig{}, specs, 1, false)
	oneNode := runClusterSet(t, def, ClusterConfig{Nodes: 1}, specs, 1, false)
	cj, err := json.Marshal(classic)
	if err != nil {
		t.Fatal(err)
	}
	oj, err := json.Marshal(oneNode)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cj, oj) {
		t.Fatalf("1-node cluster archive diverges from the single-kernel path:\nclassic: %s\ncluster: %s", cj, oj)
	}
}

// TestClusterParallelDeterminism is the cluster acceptance oracle: a
// 3-node campaign's archive is byte-identical at every worker count.
func TestClusterParallelDeterminism(t *testing.T) {
	def := workload.NewIIS(workload.MSCS)
	cfg := ClusterConfig{Nodes: 3}
	base := runClusterSet(t, def, cfg, clusterSpecs(), 1, false)
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{4, 16} {
		got := runClusterSet(t, def, cfg, clusterSpecs(), par, false)
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, gotJSON) {
			t.Fatalf("par=%d: cluster archive bytes diverge from sequential", par)
		}
	}
}

// TestClusterFreshBootMatchesFork: the per-node boot-prefix fork is an
// optimization only — forcing fresh boots produces the identical set.
func TestClusterFreshBootMatchesFork(t *testing.T) {
	for _, sup := range []workload.Supervision{workload.Standalone, workload.MSCS, workload.Watchd} {
		sup := sup
		t.Run(sup.String(), func(t *testing.T) {
			t.Parallel()
			def := workload.NewIIS(sup)
			cfg := ClusterConfig{Nodes: 3, Routing: "round-robin"}
			fresh := runClusterSet(t, def, cfg, clusterSpecs(), 2, true)
			forked := runClusterSet(t, def, cfg, clusterSpecs(), 2, false)
			if !reflect.DeepEqual(fresh, forked) {
				t.Fatal("forked cluster campaign diverges from fresh-boot")
			}
		})
	}
}

// TestClusterForkFallback: a workload whose Setup leaves the kernel
// non-quiescent cannot snapshot; cluster nodes then boot fresh
// transparently, with results identical to forced fresh-boot.
func TestClusterForkFallback(t *testing.T) {
	mkDef := func() workload.Definition {
		def := workload.NewIIS(workload.Standalone)
		base := def.Setup
		def.Setup = func(k *ntsim.Kernel) {
			base(k)
			k.Clock().ScheduleAfter(24*time.Hour, func() {})
		}
		return def
	}
	specs := clusterSpecs()[:3]
	cfg := ClusterConfig{Nodes: 2}
	fresh := runClusterSet(t, mkDef(), cfg, specs, 1, true)
	fallback := runClusterSet(t, mkDef(), cfg, specs, 1, false)
	if !reflect.DeepEqual(fresh, fallback) {
		t.Fatal("non-snapshottable cluster fallback diverges from fresh-boot")
	}
}

// TestMSCSCrossNodeFailover pins the headline behaviour: crashing the
// MSCS group owner moves the service to the standby, visible in the
// standby's eventlog and the per-node stats, and the client completes.
func TestMSCSCrossNodeFailover(t *testing.T) {
	def := workload.NewIIS(workload.MSCS)
	opts := DefaultRunnerOptions()
	opts.Cluster = ClusterConfig{Nodes: 3}
	spec := inject.FaultSpec{Function: ClusterNodeCrashFunction, Invocation: 5, Type: inject.FlipBits}
	res, err := NewRunner(def, opts).Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("client never completed: %+v", res)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("%d node stats, want 3", len(res.Nodes))
	}
	if !res.Nodes[0].Crashed {
		t.Fatalf("node 0 not marked crashed: %+v", res.Nodes[0])
	}
	if res.Nodes[1].Failovers != 1 {
		t.Fatalf("standby node 1 logged %d failovers, want 1 (stats: %+v)", res.Nodes[1].Failovers, res.Nodes)
	}
	if res.Nodes[1].Events == 0 {
		t.Fatal("standby node 1 eventlog is empty; the failover must be logged there")
	}
	if res.Outcome != RestartSuccess {
		t.Fatalf("outcome %v, want restart success (failover-recovered run)", res.Outcome)
	}
}

// TestClusterScenarioValidation: scenario faults demand a cluster
// topology, and node addresses must exist on it.
func TestClusterScenarioValidation(t *testing.T) {
	def := workload.NewIIS(workload.Standalone)

	spec := inject.FaultSpec{Function: ClusterNodeCrashFunction, Invocation: 5, Type: inject.FlipBits}
	if _, err := NewRunner(def, DefaultRunnerOptions()).Run(&spec); err == nil {
		t.Fatal("scenario fault without a cluster topology must error")
	}

	opts := DefaultRunnerOptions()
	opts.Cluster = ClusterConfig{Nodes: 2}
	bad := inject.FaultSpec{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits, Node: 5}
	if _, err := NewRunner(def, opts).Run(&bad); err == nil {
		t.Fatal("node address beyond the topology must error")
	}

	opts.Cluster = ClusterConfig{Nodes: 2, Routing: "nearest"}
	ok := inject.FaultSpec{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits}
	if _, err := NewRunner(def, opts).Run(&ok); err == nil {
		t.Fatal("unknown routing policy must error")
	}
}

// TestClusterNodeStatsOmittedOnSingleHost: classic runs must keep their
// archives byte-identical to pre-cluster versions — no nodes field.
func TestClusterNodeStatsOmittedOnSingleHost(t *testing.T) {
	def := workload.NewIIS(workload.Standalone)
	spec := inject.FaultSpec{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits}
	res, err := NewRunner(def, DefaultRunnerOptions()).Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"nodes"`)) {
		t.Fatalf("single-host archive grew a nodes field: %s", b)
	}
}

// TestClusterTelemetryMonotone: all nodes share one recorder on one
// clock, so the merged event stream — and therefore every node's slice
// of it — has non-decreasing timestamps.
func TestClusterTelemetryMonotone(t *testing.T) {
	def := workload.NewIIS(workload.MSCS)
	opts := DefaultRunnerOptions()
	opts.Cluster = ClusterConfig{Nodes: 3}
	opts.Telemetry = telemetry.Options{Enabled: true}
	spec := inject.FaultSpec{Function: ClusterNodeCrashFunction, Invocation: 5, Type: inject.FlipBits}
	res, err := NewRunner(def, opts).Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("no telemetry recorder on the run")
	}
	events := res.Telemetry.Events()
	if len(events) == 0 {
		t.Fatal("no telemetry events recorded")
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("event %d at %v precedes event %d at %v", i, events[i].At, i-1, events[i-1].At)
		}
	}
	var sawScenario bool
	for _, e := range events {
		if e.Kind == telemetry.KindPhase && e.Name == "cluster-scenario:"+ClusterNodeCrashFunction {
			sawScenario = true
		}
	}
	if !sawScenario {
		t.Fatal("scenario trigger phase event missing from the trace")
	}
}

// TestClusterScenarioKeysRoundTrip: scenario specs journal and resume
// through the same Key encoding as kernel faults.
func TestClusterScenarioKeysRoundTrip(t *testing.T) {
	for _, spec := range clusterSpecs() {
		got, err := inject.ParseKey(spec.Key())
		if err != nil {
			t.Fatalf("%s: %v", spec.Key(), err)
		}
		if got != spec {
			t.Fatalf("key %s round-tripped to %+v, want %+v", spec.Key(), got, spec)
		}
	}
	if _, err := inject.ParseKey(fmt.Sprintf("%s/0/5/1/-1", ClusterNodeCrashFunction)); err == nil {
		t.Fatal("negative node must fail to parse")
	}
}
