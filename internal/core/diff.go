package core

import (
	"fmt"
	"sort"

	"ntdts/internal/inject"
)

// Outcome diffing implements the paper's §4.3 methodology: "The results
// from the initial experiment involving watchd were studied to improve the
// original version" — i.e., compare two configurations fault by fault and
// look at exactly which faults changed outcome.

// Transition is one fault whose outcome differs between two sets.
type Transition struct {
	Fault inject.FaultSpec `json:"fault"`
	From  Outcome          `json:"from"`
	To    Outcome          `json:"to"`
}

// String renders a transition the way the debugging notes would.
func (t Transition) String() string {
	return fmt.Sprintf("%-38s %s -> %s", t.Fault.String(), t.From, t.To)
}

// DiffSets compares two sets over their common injected faults and returns
// every outcome transition, sorted by fault. Typical uses: Watchd1 vs
// Watchd2 (what did the fix recover? what did it break?), stand-alone vs
// middleware (what does the monitor actually buy?).
func DiffSets(from, to *SetResult) []Transition {
	fromRuns, toRuns := CommonInjected(from, to)
	var out []Transition
	for i := range fromRuns {
		if fromRuns[i].Outcome == toRuns[i].Outcome {
			continue
		}
		out = append(out, Transition{
			Fault: fromRuns[i].Fault,
			From:  fromRuns[i].Outcome,
			To:    toRuns[i].Outcome,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Fault.String() < out[j].Fault.String()
	})
	return out
}

// TransitionSummary tallies transitions by (from, to) class.
type TransitionSummary struct {
	Improved  int `json:"improved"`  // failure -> any success
	Regressed int `json:"regressed"` // any success -> failure
	Shifted   int `json:"shifted"`   // success class changed
}

// Summarize classifies a transition list.
func SummarizeTransitions(ts []Transition) TransitionSummary {
	var s TransitionSummary
	for _, t := range ts {
		switch {
		case t.From == Failure && t.To != Failure:
			s.Improved++
		case t.From != Failure && t.To == Failure:
			s.Regressed++
		default:
			s.Shifted++
		}
	}
	return s
}
