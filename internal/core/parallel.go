package core

// Parallel campaign engine. The paper's DTS ran one fault-injection run
// at a time on a single NT box; here every run builds its own fresh
// ntsim.Kernel and shares no mutable state, so a campaign is an
// embarrassingly parallel job list. The engine below executes that list
// on a bounded worker pool while keeping the results byte-identical to a
// sequential sweep: each run writes into a pre-sized slice at its
// fault-list position, and the Progress callback is invoked serially
// with a monotonic done-counter.

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ntdts/internal/inject"
	"ntdts/internal/ntsim/win32"
)

// planJob is one schedulable run of a campaign: a real fault from the
// generated list, or a paper-faithful skip probe for an unactivated
// function.
type planJob struct {
	spec  inject.FaultSpec
	probe bool
}

// faultPlan is the prepared run list for one (activation set, fault
// types, invocation, skip mode) combination, plus the skip accounting
// the catalog walk produces. Plans are immutable once built.
type faultPlan struct {
	jobs          []planJob
	faults        int // non-probe jobs (the Progress total)
	skippedFns    int
	skippedFaults int
}

// planCache memoizes fault plans per process: the 681-entry catalog walk
// and spec-list construction run once per (types, invocation, skip mode,
// activation set) rather than once per campaign. Campaigns for the same
// workload/supervision pair — benchmarks, repeated experiments, Figure 5
// version sweeps — reuse the cached plan.
var planCache sync.Map // string -> *faultPlan

// planFor returns the (possibly cached) fault plan for an activation set.
func planFor(activated map[string]bool, types []inject.FaultType, invocation int, faithfulSkips bool) *faultPlan {
	key := planKey(activated, types, invocation, faithfulSkips)
	if p, ok := planCache.Load(key); ok {
		return p.(*faultPlan)
	}
	p := buildPlan(activated, types, invocation, faithfulSkips)
	actual, _ := planCache.LoadOrStore(key, p)
	return actual.(*faultPlan)
}

// planKey canonicalizes the plan inputs. The activation set is small
// (tens of functions) and deterministic per workload, so sorting it is
// cheap relative to one simulation run.
func planKey(activated map[string]bool, types []inject.FaultType, invocation int, faithfulSkips bool) string {
	fns := make([]string, 0, len(activated))
	for fn, on := range activated {
		if on {
			fns = append(fns, fn)
		}
	}
	sort.Strings(fns)
	var b strings.Builder
	b.WriteString(strconv.Itoa(invocation))
	b.WriteByte('/')
	b.WriteString(strconv.FormatBool(faithfulSkips))
	for _, t := range types {
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(int(t)))
	}
	for _, fn := range fns {
		b.WriteByte('|')
		b.WriteString(fn)
	}
	return b.String()
}

// buildPlan walks the export catalog in order and lays out the campaign's
// job list exactly as the sequential engine executed it: skip probes (in
// catalog order) first, then the generated fault list (catalog order ×
// parameter × type).
func buildPlan(activated map[string]bool, types []inject.FaultType, invocation int, faithfulSkips bool) *faultPlan {
	p := &faultPlan{}
	var probes, specs []planJob
	for _, entry := range win32.Catalog() {
		if entry.Params == 0 {
			continue
		}
		if !activated[entry.Name] {
			if faithfulSkips {
				// The paper burned one run on the first fault of the
				// function and skipped the rest when it did not activate.
				probes = append(probes, planJob{
					spec: inject.FaultSpec{
						Function: entry.Name, Param: 0,
						Invocation: invocation, Type: types[0],
					},
					probe: true,
				})
			}
			p.skippedFns++
			p.skippedFaults += entry.Params * len(types)
			continue
		}
		for param := 0; param < entry.Params; param++ {
			for _, t := range types {
				specs = append(specs, planJob{spec: inject.FaultSpec{
					Function: entry.Name, Param: param, Invocation: invocation, Type: t,
				}})
			}
		}
	}
	p.jobs = append(probes, specs...)
	p.faults = len(specs)
	return p
}

// jobError carries the failing job's list position so concurrent failures
// resolve to the same error a sequential sweep would have reported first.
type jobError struct {
	index int
	err   error
}

// executeJobs runs the job list on a bounded worker pool and returns the
// results in job order, regardless of completion order or worker count.
// Each worker owns its own Runner clone. On error the pool stops handing
// out new jobs, in-flight runs finish, and the lowest-indexed error is
// returned — the one the sequential engine would have hit first.
//
// With a non-nil Supervisor every run routes through its resilience
// layer (watchdog, panic quarantine, retries, journal, replay-on-resume)
// and a supervisor stop (interrupt, quarantine budget) returns the
// partial results alongside the stop cause.
func executeJobs(base *Runner, jobs []planJob, parallelism int, progressTotal int, progress func(done, total int), sup *Supervisor) ([]RunResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]RunResult, len(jobs))
	var (
		cursor atomic.Int64 // next job to claim, minus one
		stop   atomic.Bool

		errMu    sync.Mutex
		firstErr *jobError

		// done and the user callback live under one mutex so the
		// callback observes a strictly increasing counter and its final
		// invocation is (total, total) — the same contract callers relied
		// on when runs completed in order.
		progressMu sync.Mutex
		done       int
	)
	cursor.Store(-1)

	fail := func(index int, err error) {
		errMu.Lock()
		if firstErr == nil || index < firstErr.index {
			firstErr = &jobError{index: index, err: err}
		}
		errMu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := base.Clone()
			for !stop.Load() {
				if sup != nil && sup.stopped() {
					return
				}
				i := int(cursor.Add(1))
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				spec := job.spec // plans are shared; never hand out interior pointers
				var (
					res *RunResult
					err error
				)
				if sup != nil {
					res, err = sup.execute(runner, i, job)
				} else {
					res, err = runner.Run(&spec)
				}
				if err != nil {
					// The fingerprint is the journal key's hash, so a failed
					// run is greppable in the journal by the same identifier
					// the error names.
					if job.probe {
						fail(i, fmt.Errorf("skip probe %v [%s]: %w", spec, spec.Fingerprint(), err))
					} else {
						fail(i, fmt.Errorf("run %v [%s]: %w", spec, spec.Fingerprint(), err))
					}
					return
				}
				if job.probe {
					res.Skipped = true
				}
				results[i] = *res
				if progress != nil && !job.probe {
					progressMu.Lock()
					done++
					progress(done, progressTotal)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr.err
	}
	if sup != nil {
		if cause := sup.stopCause(); cause != nil {
			// Graceful stop (interrupt or quarantine budget): hand back
			// whatever the workers finished with the cause.
			return results, cause
		}
	}
	return results, nil
}

// RunSpecs executes an explicit fault list on the campaign worker pool,
// returning results in spec order. This is the engine behind Campaign
// and the dts fault-list-file path; parallelism semantics match
// Campaign.Parallelism (0 = GOMAXPROCS, 1 = sequential).
func RunSpecs(r *Runner, specs []inject.FaultSpec, parallelism int, progress func(done, total int)) ([]RunResult, error) {
	return RunSpecsSupervised(r, specs, parallelism, progress, nil)
}

// RunSpecsSupervised is RunSpecs under a campaign supervisor: runs gain
// the watchdog/quarantine/retry/journal layer, completed runs replay
// from a resumed journal, and a supervisor stop returns partial results
// with the stop cause.
func RunSpecsSupervised(r *Runner, specs []inject.FaultSpec, parallelism int, progress func(done, total int), sup *Supervisor) ([]RunResult, error) {
	jobs := make([]planJob, len(specs))
	for i, s := range specs {
		jobs[i] = planJob{spec: s}
	}
	if sup != nil {
		if err := sup.syncPlan(jobs); err != nil {
			return nil, err
		}
	}
	return executeJobs(r, jobs, parallelism, len(jobs), progress, sup)
}
