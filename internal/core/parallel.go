package core

// Parallel campaign engine. The paper's DTS ran one fault-injection run
// at a time on a single NT box; here every run builds its own fresh
// ntsim.Kernel and shares no mutable state, so a campaign is an
// embarrassingly parallel job list. The engine below executes that list
// on a bounded worker pool while keeping the results byte-identical to a
// sequential sweep: each run writes into a pre-sized slice at its
// fault-list position, and the Progress callback is invoked serially
// with a monotonic done-counter.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ntdts/internal/inject"
	"ntdts/internal/ntsim/win32"
)

// PlanJob is one schedulable run of a campaign: a real fault from the
// generated list, or a paper-faithful skip probe for an unactivated
// function. Exported so a ShardExecutor can carry job lists across the
// process boundary.
type PlanJob struct {
	Spec  inject.FaultSpec
	Probe bool
}

// Key renders the job's journal/wire identity: the FaultSpec key, with
// probe jobs marked by a "/probe" suffix.
func (j PlanJob) Key() string {
	k := j.Spec.Key()
	if j.Probe {
		k += "/probe"
	}
	return k
}

// ParseJobKey inverts PlanJob.Key.
func ParseJobKey(key string) (PlanJob, error) {
	j := PlanJob{}
	if rest, ok := strings.CutSuffix(key, "/probe"); ok {
		j.Probe = true
		key = rest
	}
	spec, err := inject.ParseKey(key)
	if err != nil {
		return PlanJob{}, err
	}
	j.Spec = spec
	return j, nil
}

// faultPlan is the prepared run list for one (activation set, fault
// types, invocation, skip mode) combination, plus the skip accounting
// the catalog walk produces. Plans are immutable once built.
type faultPlan struct {
	jobs          []PlanJob
	faults        int // non-probe jobs (the Progress total)
	skippedFns    int
	skippedFaults int
}

// planCache memoizes fault plans per process: the 681-entry catalog walk
// and spec-list construction run once per (types, invocation, skip mode,
// activation set) rather than once per campaign. Campaigns for the same
// workload/supervision pair — benchmarks, repeated experiments, Figure 5
// version sweeps — reuse the cached plan.
var planCache sync.Map // string -> *faultPlan

// planFor returns the (possibly cached) fault plan for an activation set.
func planFor(activated map[string]bool, types []inject.FaultType, invocation int, faithfulSkips bool) *faultPlan {
	key := planKey(activated, types, invocation, faithfulSkips)
	if p, ok := planCache.Load(key); ok {
		return p.(*faultPlan)
	}
	p := buildPlan(activated, types, invocation, faithfulSkips)
	actual, _ := planCache.LoadOrStore(key, p)
	return actual.(*faultPlan)
}

// planKey canonicalizes the plan inputs. The activation set is small
// (tens of functions) and deterministic per workload, so sorting it is
// cheap relative to one simulation run.
func planKey(activated map[string]bool, types []inject.FaultType, invocation int, faithfulSkips bool) string {
	fns := make([]string, 0, len(activated))
	for fn, on := range activated {
		if on {
			fns = append(fns, fn)
		}
	}
	sort.Strings(fns)
	var b strings.Builder
	b.WriteString(strconv.Itoa(invocation))
	b.WriteByte('/')
	b.WriteString(strconv.FormatBool(faithfulSkips))
	for _, t := range types {
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(int(t)))
	}
	for _, fn := range fns {
		b.WriteByte('|')
		b.WriteString(fn)
	}
	return b.String()
}

// buildPlan walks the export catalog in order and lays out the campaign's
// job list exactly as the sequential engine executed it: skip probes (in
// catalog order) first, then the generated fault list (catalog order ×
// parameter × type).
func buildPlan(activated map[string]bool, types []inject.FaultType, invocation int, faithfulSkips bool) *faultPlan {
	p := &faultPlan{}
	var probes, specs []PlanJob
	for _, entry := range win32.Catalog() {
		if entry.Params == 0 {
			continue
		}
		if !activated[entry.Name] {
			if faithfulSkips {
				// The paper burned one run on the first fault of the
				// function and skipped the rest when it did not activate.
				probes = append(probes, PlanJob{
					Spec: inject.FaultSpec{
						Function: entry.Name, Param: 0,
						Invocation: invocation, Type: types[0],
					},
					Probe: true,
				})
			}
			p.skippedFns++
			p.skippedFaults += entry.Params * len(types)
			continue
		}
		for param := 0; param < entry.Params; param++ {
			for _, t := range types {
				specs = append(specs, PlanJob{Spec: inject.FaultSpec{
					Function: entry.Name, Param: param, Invocation: invocation, Type: t,
				}})
			}
		}
	}
	p.jobs = append(probes, specs...)
	p.faults = len(specs)
	return p
}

// jobError carries the failing job's list position so concurrent failures
// resolve to the same error a sequential sweep would have reported first.
type jobError struct {
	index int
	err   error
}

// executeJobs runs the job list on a bounded worker pool and returns the
// results in job order, regardless of completion order or worker count.
// Each worker owns its own Runner clone. On error the pool stops handing
// out new jobs, in-flight runs finish, and the lowest-indexed error is
// returned — the one the sequential engine would have hit first.
//
// With a non-nil Supervisor every run routes through its resilience
// layer (watchdog, panic quarantine, retries, journal, replay-on-resume)
// and a supervisor stop (interrupt, quarantine budget) returns the
// partial results alongside the stop cause.
//
// Context cancellation stops the pool between runs (in-flight runs
// finish; every run is bounded in virtual time). Supervised campaigns
// convert the cancellation into a supervisor stop, so the caller gets
// partial results with ErrInterrupted — the same contract as a signal
// interrupt; unsupervised campaigns return ErrInterrupted alone.
func executeJobs(ctx context.Context, base *Runner, jobs []PlanJob, parallelism int, progressTotal int, progress func(done, total int), sup *Supervisor) ([]RunResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if sup != nil {
		// Route cancellation through the supervisor's stop latch so the
		// partial-results path (journal flush, resume hint) is identical
		// for a canceled context and a direct RequestStop.
		stopWatch := context.AfterFunc(ctx, func() { sup.RequestStop(ErrInterrupted) })
		defer stopWatch()
	}
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]RunResult, len(jobs))
	var (
		cursor atomic.Int64 // next job to claim, minus one
		stop   atomic.Bool

		errMu    sync.Mutex
		firstErr *jobError

		// done and the user callback live under one mutex so the
		// callback observes a strictly increasing counter and its final
		// invocation is (total, total) — the same contract callers relied
		// on when runs completed in order.
		progressMu sync.Mutex
		done       int
	)
	cursor.Store(-1)

	fail := func(index int, err error) {
		errMu.Lock()
		if firstErr == nil || index < firstErr.index {
			firstErr = &jobError{index: index, err: err}
		}
		errMu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := base.Clone()
			for !stop.Load() {
				if sup != nil && sup.stopped() {
					return
				}
				if sup == nil && ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1))
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				spec := job.Spec // plans are shared; never hand out interior pointers
				var (
					res *RunResult
					err error
				)
				if sup != nil {
					res, err = sup.execute(ctx, runner, i, job)
				} else {
					res, err = runner.Run(&spec)
				}
				if err != nil {
					// The fingerprint is the journal key's hash, so a failed
					// run is greppable in the journal by the same identifier
					// the error names.
					if job.Probe {
						fail(i, fmt.Errorf("skip probe %v [%s]: %w", spec, spec.Fingerprint(), err))
					} else {
						fail(i, fmt.Errorf("run %v [%s]: %w", spec, spec.Fingerprint(), err))
					}
					return
				}
				if job.Probe {
					res.Skipped = true
				}
				results[i] = *res
				if progress != nil && !job.Probe {
					progressMu.Lock()
					done++
					progress(done, progressTotal)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr.err
	}
	if sup != nil {
		if cause := sup.stopCause(); cause != nil {
			// Graceful stop (interrupt or quarantine budget): hand back
			// whatever the workers finished with the cause.
			return results, cause
		}
	}
	if ctx.Err() != nil {
		return nil, ErrInterrupted
	}
	return results, nil
}

// RunSpecs executes an explicit fault list on the campaign worker pool,
// returning results in spec order. This is the engine behind Campaign
// and the dts fault-list-file path; parallelism semantics match
// Campaign.Parallelism (0 = GOMAXPROCS, 1 = sequential). Cancel ctx to
// stop the pool between runs.
func RunSpecs(ctx context.Context, r *Runner, specs []inject.FaultSpec, parallelism int, progress func(done, total int)) ([]RunResult, error) {
	return RunSpecsSupervised(ctx, r, specs, parallelism, progress, nil)
}

// RunSpecsSupervised is RunSpecs under a campaign supervisor: runs gain
// the watchdog/quarantine/retry/journal layer, completed runs replay
// from a resumed journal, and a supervisor stop (or ctx cancellation)
// returns partial results with the stop cause.
func RunSpecsSupervised(ctx context.Context, r *Runner, specs []inject.FaultSpec, parallelism int, progress func(done, total int), sup *Supervisor) ([]RunResult, error) {
	jobs := make([]PlanJob, len(specs))
	for i, s := range specs {
		jobs[i] = PlanJob{Spec: s}
	}
	if sup != nil {
		if err := sup.syncPlan(jobs); err != nil {
			return nil, err
		}
	}
	return executeJobs(ctx, r, jobs, parallelism, len(jobs), progress, sup)
}
