package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/ntsim"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
)

// supervisedSweep executes a journaled, telemetry-enabled supervised
// sweep of specs and returns the campaign artifacts byte-comparably:
// marshaled results, the merged JSONL trace, and the metrics text. With
// a non-nil rep the sweep resumes: completed runs replay from the
// journal (whose torn tail is truncated first).
func supervisedSweep(t *testing.T, specs []inject.FaultSpec, par int, jpath string, rep *journal.Replayed, opts SupervisorOptions) (results, trace []byte, metrics string) {
	t.Helper()
	runner := NewRunner(workload.NewApache1(workload.Standalone),
		RunnerOptions{Telemetry: telemetry.Options{Enabled: true}})
	sup := NewSupervisor(opts)
	var (
		jw  *journal.Writer
		err error
	)
	if rep != nil {
		sup.LoadResume(rep)
		jw, err = journal.Append(jpath, rep.ValidBytes, rep.Records)
	} else {
		jw, err = journal.Create(jpath, journal.Header{Workload: "Apache1", Supervision: "none", Telemetry: true})
	}
	if err != nil {
		t.Fatal(err)
	}
	sup.AttachJournal(jw)
	runs, err := RunSpecsSupervised(context.Background(), runner, specs, par, nil, sup)
	if err != nil {
		t.Fatalf("supervised sweep: %v", err)
	}
	if err := jw.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(runs)
	if err != nil {
		t.Fatal(err)
	}
	set := CollectTelemetry(nil, runs)
	var buf bytes.Buffer
	if err := set.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return resJSON, buf.Bytes(), set.MetricsText()
}

// TestResumeEquivalence is the tentpole guarantee: a journaled campaign
// killed at an arbitrary byte offset (modeled exactly as SIGKILL leaves
// an append-only file: a truncated prefix, possibly mid-line) and then
// resumed produces results, trace, and metrics byte-identical to the
// uninterrupted campaign — at parallelism 1, 4, and 16.
func TestResumeEquivalence(t *testing.T) {
	specs := telemetrySpecs(60)
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.journal")
	gRes, gTrace, gMetrics := supervisedSweep(t, specs, 4, golden, nil, SupervisorOptions{})
	full, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 4, 16} {
		// Kill mid-campaign: keep roughly half the journal, cutting
		// mid-line so the torn-tail path is exercised too. Each
		// iteration gets its own path so one resume's checkpoint
		// sidecar cannot shadow the next truncated copy.
		cut := len(full) / 2
		jpath := filepath.Join(dir, fmt.Sprintf("killed-%d.journal", par))
		if err := os.WriteFile(jpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := journal.Replay(jpath)
		if err != nil {
			t.Fatalf("parallelism %d: replay: %v", par, err)
		}
		res, trace, metrics := supervisedSweep(t, specs, par, jpath, rep, SupervisorOptions{})
		if !bytes.Equal(res, gRes) {
			t.Errorf("parallelism %d: resumed results differ from uninterrupted run", par)
		}
		if !bytes.Equal(trace, gTrace) {
			t.Errorf("parallelism %d: resumed trace differs from uninterrupted run", par)
		}
		if metrics != gMetrics {
			t.Errorf("parallelism %d: resumed metrics differ from uninterrupted run", par)
		}
	}
}

// TestJournalPrefixResume is the replay-idempotence property test: for
// fuzzed truncation points across the whole journal — including ones
// that tear a line in half — resuming from the prefix reproduces the
// uninterrupted campaign byte-for-byte. Truncations that destroy the
// header are rejected cleanly rather than resumed.
func TestJournalPrefixResume(t *testing.T) {
	specs := telemetrySpecs(40)
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.journal")
	gRes, gTrace, gMetrics := supervisedSweep(t, specs, 4, golden, nil, SupervisorOptions{})
	full, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	cuts := []int{0, 1, len(full) - 1, len(full)}
	for i := 0; i < 10; i++ {
		cuts = append(cuts, rng.Intn(len(full)))
	}
	for ci, cut := range cuts {
		jpath := filepath.Join(dir, fmt.Sprintf("prefix-%d.journal", ci))
		if err := os.WriteFile(jpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := journal.Replay(jpath)
		if err != nil {
			// Only a destroyed header is allowed to fail replay.
			if !strings.Contains(err.Error(), "header") {
				t.Errorf("cut %d: unexpected replay error: %v", cut, err)
			}
			continue
		}
		res, trace, metrics := supervisedSweep(t, specs, 4, jpath, rep, SupervisorOptions{})
		if !bytes.Equal(res, gRes) || !bytes.Equal(trace, gTrace) || metrics != gMetrics {
			t.Errorf("cut %d: resumed campaign is not byte-identical to the uninterrupted run", cut)
		}
	}
}

// chaosSpec builds a fault spec naming a reserved chaos function.
func chaosSpec(fn string) inject.FaultSpec {
	return inject.FaultSpec{Function: fn, Param: 0, Invocation: 1, Type: inject.ZeroBits}
}

// TestSupervisorQuarantine proves the resilience paths end to end: a
// deliberately-panicking and a deliberately-hanging spec are quarantined
// without failing the campaign (with stack and deadline evidence,
// respecting the attempt budget), a flaky spec is saved by one retry
// with provenance in its telemetry, and ordinary specs are untouched.
func TestSupervisorQuarantine(t *testing.T) {
	specs := []inject.FaultSpec{
		{Function: "ReadFile", Param: 0, Invocation: 1, Type: inject.ZeroBits},
		chaosSpec(ChaosPanicFunction),
		chaosSpec(ChaosHangFunction),
		chaosSpec(ChaosFlakyFunction),
		{Function: "CloseHandle", Param: 0, Invocation: 1, Type: inject.FlipBits},
	}
	runner := NewRunner(workload.NewApache1(workload.Standalone),
		RunnerOptions{Telemetry: telemetry.Options{Enabled: true}})
	sup := NewSupervisor(SupervisorOptions{
		Chaos:        true,
		MaxAttempts:  2,
		WallDeadline: 100 * time.Millisecond,
		Backoff:      time.Millisecond,
	})
	runs, err := RunSpecsSupervised(context.Background(), runner, specs, 2, nil, sup)
	if err != nil {
		t.Fatalf("campaign failed instead of quarantining: %v", err)
	}
	if len(runs) != len(specs) {
		t.Fatalf("%d results for %d specs", len(runs), len(specs))
	}

	quar := sup.Quarantined()
	if len(quar) != 2 {
		t.Fatalf("quarantined %d runs, want 2 (panic + hang): %+v", len(quar), quar)
	}
	byFn := map[string]QuarantineEntry{}
	for _, q := range quar {
		byFn[q.Fault.Function] = q
	}
	pq, ok := byFn[ChaosPanicFunction]
	if !ok {
		t.Fatal("panic spec not quarantined")
	}
	if pq.Reason != ReasonPanic || pq.Attempts != 2 {
		t.Errorf("panic quarantine: reason %q attempts %d, want panic/2", pq.Reason, pq.Attempts)
	}
	if !strings.Contains(pq.Message, "deliberate panic") || !strings.Contains(pq.Stack, "supervise") {
		t.Errorf("panic quarantine lacks evidence: message %q, stack %d bytes", pq.Message, len(pq.Stack))
	}
	hq, ok := byFn[ChaosHangFunction]
	if !ok {
		t.Fatal("hang spec not quarantined")
	}
	if hq.Reason != ReasonHang || hq.Attempts != 2 {
		t.Errorf("hang quarantine: reason %q attempts %d, want hang/2", hq.Reason, hq.Attempts)
	}
	if !strings.Contains(hq.Message, "wall-clock deadline") {
		t.Errorf("hang quarantine lacks the deadline evidence: %q", hq.Message)
	}

	// Quarantined placeholders occupy their index; the hang carries the
	// supervisor-only HarnessHang outcome.
	if !runs[1].Quarantined || !runs[2].Quarantined {
		t.Error("quarantined runs not marked in results")
	}
	if runs[2].Outcome != HarnessHang {
		t.Errorf("hung run outcome %v, want %v", runs[2].Outcome, HarnessHang)
	}
	if runs[2].Outcome.String() != "harness hang" {
		t.Errorf("HarnessHang renders as %q", runs[2].Outcome)
	}

	// The flaky spec survived on its second attempt, with retry
	// provenance in its own trace.
	if runs[3].Quarantined || runs[3].Retries != 1 {
		t.Errorf("flaky run: quarantined=%v retries=%d, want saved with 1 retry", runs[3].Quarantined, runs[3].Retries)
	}
	if runs[3].Telemetry == nil {
		t.Fatal("flaky run has no telemetry")
	}
	if runs[3].Telemetry.Counter(telemetry.CtrSupRetry) != 1 {
		t.Errorf("flaky run retry counter %d, want 1", runs[3].Telemetry.Counter(telemetry.CtrSupRetry))
	}
	found := false
	for _, e := range runs[3].Telemetry.Events() {
		if e.Kind == telemetry.KindRunRetry {
			found = true
			if e.A != 1 {
				t.Errorf("retry event counts %d retries, want 1", e.A)
			}
		}
	}
	if !found {
		t.Error("flaky run trace has no run-retry event")
	}

	// Ordinary specs are untouched by the supervisor.
	if runs[0].Quarantined || runs[0].Retries != 0 || runs[4].Quarantined || runs[4].Retries != 0 {
		t.Error("ordinary runs were touched by the supervisor")
	}

	// HarnessHang stays out of the paper's five-outcome set.
	for _, o := range AllOutcomes() {
		if o == HarnessHang {
			t.Fatal("HarnessHang leaked into AllOutcomes")
		}
	}
}

// TestQuarantineBudget proves graceful degradation: exceeding
// -max-quarantined stops the campaign with QuarantineBudgetError and
// partial results instead of burning the remaining sweep.
func TestQuarantineBudget(t *testing.T) {
	var specs []inject.FaultSpec
	specs = append(specs, chaosSpec(ChaosPanicFunction))
	specs = append(specs, chaosSpec(ChaosHangFunction))
	for _, s := range telemetrySpecs(20) {
		specs = append(specs, s)
	}
	runner := NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{})
	sup := NewSupervisor(SupervisorOptions{
		Chaos:          true,
		MaxAttempts:    1,
		WallDeadline:   50 * time.Millisecond,
		MaxQuarantined: 1,
	})
	runs, err := RunSpecsSupervised(context.Background(), runner, specs, 1, nil, sup)
	var budget *QuarantineBudgetError
	if !errors.As(err, &budget) {
		t.Fatalf("error %v, want QuarantineBudgetError", err)
	}
	if budget.Budget != 1 || budget.Quarantined < 1 {
		t.Errorf("budget error %+v", budget)
	}
	if len(runs) != len(specs) {
		t.Fatalf("partial results slice spans %d, want the full plan %d", len(runs), len(specs))
	}
	executed := 0
	for _, r := range runs {
		if r.Completed || r.Quarantined {
			executed++
		}
	}
	if executed >= len(specs) {
		t.Error("budget stop did not save any remaining runs")
	}
}

// TestSupervisorInterrupt models SIGINT: RequestStop(ErrInterrupted)
// mid-campaign drains the workers and returns partial results with the
// interrupt as the cause; the journal stays replayable and a resume
// completes the campaign byte-identically.
func TestSupervisorInterrupt(t *testing.T) {
	specs := telemetrySpecs(40)
	dir := t.TempDir()
	golden := filepath.Join(dir, "golden.journal")
	gRes, gTrace, gMetrics := supervisedSweep(t, specs, 4, golden, nil, SupervisorOptions{})

	jpath := filepath.Join(dir, "interrupted.journal")
	runner := NewRunner(workload.NewApache1(workload.Standalone),
		RunnerOptions{Telemetry: telemetry.Options{Enabled: true}})
	sup := NewSupervisor(SupervisorOptions{})
	jw, err := journal.Create(jpath, journal.Header{Workload: "Apache1", Supervision: "none", Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	sup.AttachJournal(jw)
	fired := false
	progress := func(done, total int) {
		if done >= 10 && !fired {
			fired = true
			sup.RequestStop(ErrInterrupted)
		}
	}
	_, err = RunSpecsSupervised(context.Background(), runner, specs, 4, progress, sup)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted campaign returned %v, want ErrInterrupted", err)
	}
	if err := jw.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if jw.Records() == 0 {
		t.Fatal("interrupt flushed an empty journal")
	}

	rep, err := journal.Replay(jpath)
	if err != nil {
		t.Fatal(err)
	}
	res, trace, metrics := supervisedSweep(t, specs, 4, jpath, rep, SupervisorOptions{})
	if !bytes.Equal(res, gRes) || !bytes.Equal(trace, gTrace) || metrics != gMetrics {
		t.Error("resume after interrupt is not byte-identical to the uninterrupted run")
	}
}

// TestRunSpecsErrorFingerprint pins the satellite fix: first-error
// reports carry the FaultSpec fingerprint (the journal key hash), so a
// failed run is greppable in the journal by the same identifier.
func TestRunSpecsErrorFingerprint(t *testing.T) {
	def := workload.NewApache1(workload.Standalone)
	def.SpawnClient = func(k *ntsim.Kernel) (*ntsim.Process, *workload.Report, error) {
		return nil, nil, errors.New("client refused to start")
	}
	spec := inject.FaultSpec{Function: "ReadFile", Param: 0, Invocation: 1, Type: inject.ZeroBits}
	_, err := RunSpecs(context.Background(), NewRunner(def, RunnerOptions{}), []inject.FaultSpec{spec}, 1, nil)
	if err == nil {
		t.Fatal("no error from failing run")
	}
	if !strings.Contains(err.Error(), "["+spec.Fingerprint()+"]") {
		t.Errorf("error %q does not carry fingerprint %s", err, spec.Fingerprint())
	}
}
