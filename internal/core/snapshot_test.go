package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ntdts/internal/determinism"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/workload"
)

// planSpecs materializes the first n specs of a workload's catalog plan,
// so equivalence tests sweep a realistic spec mix (every activated
// function × parameter × corruption) without paying for the full catalog.
func planSpecs(t *testing.T, def workload.Definition, n int) []inject.FaultSpec {
	t.Helper()
	var specs []inject.FaultSpec
	// One catalog walk per invocation, so spec counts beyond one sweep's
	// catalog (~87 for Apache1) draw from deeper invocations — sites the
	// snapshot engine still groups and serves from the same boot prefix.
	for inv := 1; len(specs) < n; inv++ {
		if inv > 8 {
			t.Fatalf("plan too small: %d specs, want %d", len(specs), n)
		}
		c := NewCampaign(NewRunner(def, RunnerOptions{}), WithInvocation(inv))
		p, err := c.Prepare()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range p.Jobs {
			if j.Probe {
				continue
			}
			specs = append(specs, j.Spec)
			if len(specs) == n {
				break
			}
		}
	}
	return specs
}

// TestSnapshotForkMatchesFreshBoot is the engine's acceptance oracle: a
// 200-spec campaign executed on the snapshot-fork engine is deep- and
// byte-identical to the legacy fresh-boot engine, at every worker count.
func TestSnapshotForkMatchesFreshBoot(t *testing.T) {
	def := workload.NewApache1(workload.Standalone)
	specs := planSpecs(t, def, 200)

	runSet := func(freshBoot bool, par int) *SetResult {
		c := NewCampaign(
			NewRunner(def, RunnerOptions{}),
			WithSpecs(specs),
			WithParallelism(par),
		)
		if freshBoot {
			c.Runner().Opts.FreshBoot = true
		}
		set, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("freshBoot=%v par=%d: %v", freshBoot, par, err)
		}
		return set
	}

	baseline := runSet(true, 1)
	baseJSON, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 16} {
		forked := runSet(false, par)
		determinism.AssertEqualSlices(t, fmt.Sprintf("snapshot-forked runs (par=%d)", par),
			forked.Runs, baseline.Runs, func(i int) string {
				return fmt.Sprintf("dts -config <Apache1/none> -fault %q -fresh-boot", baseline.Runs[i].Fault.String())
			})
		if !reflect.DeepEqual(baseline, forked) {
			t.Fatalf("par=%d: set diverges outside Runs", par)
		}
		forkedJSON, err := json.Marshal(forked)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(baseJSON, forkedJSON) {
			t.Fatalf("par=%d: archive bytes diverge from fresh-boot", par)
		}
	}
}

// TestSnapshotForkAllWorkloads sweeps every supervision mode over a small
// spec slice: the fork path must match fresh-boot under middleware
// (MSCS restart loops, watchd polling) as well as standalone.
func TestSnapshotForkAllWorkloads(t *testing.T) {
	for _, sup := range []workload.Supervision{workload.Standalone, workload.MSCS, workload.Watchd} {
		for _, def := range workload.StandardSet(sup) {
			def := def
			t.Run(def.Name+"/"+sup.String(), func(t *testing.T) {
				t.Parallel()
				specs := planSpecs(t, def, 12)
				run := func(freshBoot bool) *SetResult {
					c := NewCampaign(NewRunner(def, RunnerOptions{}), WithSpecs(specs), WithParallelism(2))
					c.Runner().Opts.FreshBoot = freshBoot
					set, err := c.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					return set
				}
				fresh, forked := run(true), run(false)
				if !reflect.DeepEqual(fresh, forked) {
					t.Fatal("forked campaign diverges from fresh-boot")
				}
			})
		}
	}
}

// TestSnapshotFallback proves the transparent fresh-boot fallback: a
// workload whose Setup leaves the kernel non-quiescent (a background
// timer here) resolves to TierNone and still produces results identical
// to forced fresh-boot.
func TestSnapshotFallback(t *testing.T) {
	def := workload.NewApache1(workload.Standalone)
	base := def.Setup
	def.Setup = func(k *ntsim.Kernel) {
		base(k)
		// A boot-time maintenance timer: snapshot-incompatible, but far
		// enough out never to fire inside a run.
		k.Clock().ScheduleAfter(24*time.Hour, func() {})
	}

	r := NewRunner(def, RunnerOptions{})
	if tier := r.SnapshotAt(inject.Site{Function: "WriteFile", Invocation: 1}); tier != TierNone {
		t.Fatalf("non-quiescent setup got tier %v, want none", tier)
	}

	specs := planSpecs(t, workload.NewApache1(workload.Standalone), 8)
	run := func(freshBoot bool) *SetResult {
		c := NewCampaign(NewRunner(def, RunnerOptions{}), WithSpecs(specs))
		c.Runner().Opts.FreshBoot = freshBoot
		set, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	if fresh, fallback := run(true), run(false); !reflect.DeepEqual(fresh, fallback) {
		t.Fatal("fallback path diverges from fresh-boot")
	}
}

// TestSnapshotAtTier: quiescent workloads resolve every site to the boot
// tier; fresh-boot mode forces TierNone.
func TestSnapshotAtTier(t *testing.T) {
	site := inject.Site{Function: "ReadFile", Invocation: 1}
	r := NewRunner(workload.NewIIS(workload.Standalone), RunnerOptions{})
	if tier := r.SnapshotAt(site); tier != TierBoot {
		t.Fatalf("IIS setup got tier %v, want boot", tier)
	}
	fb := NewRunner(workload.NewIIS(workload.Standalone), RunnerOptions{FreshBoot: true})
	if tier := fb.SnapshotAt(site); tier != TierNone {
		t.Fatalf("fresh-boot got tier %v, want none", tier)
	}
}

// TestSiteGroups: the plan partitions cleanly by activation site — every
// job in exactly one group, grouped jobs sharing their (function,
// invocation), groups at the boot tier for a snapshot-capable workload.
func TestSiteGroups(t *testing.T) {
	c := NewCampaign(NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}))
	p, err := c.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	groups := p.SiteGroups()
	seen := make(map[int]bool)
	for _, g := range groups {
		if g.Tier != TierBoot {
			t.Fatalf("site %v: tier %v, want boot", g.Site, g.Tier)
		}
		for _, ji := range g.Jobs {
			if seen[ji] {
				t.Fatalf("job %d in two groups", ji)
			}
			seen[ji] = true
			if got := p.Jobs[ji].Spec.Site(); got != g.Site {
				t.Fatalf("job %d site %v grouped under %v", ji, got, g.Site)
			}
		}
	}
	if len(seen) != len(p.Jobs) {
		t.Fatalf("groups cover %d of %d jobs", len(seen), len(p.Jobs))
	}
}

// TestRunAllocBudget pins the allocation count of one pooled run. The
// budget has headroom over the measured value but fails loudly if the
// pooling or copy-on-write layers regress. (Seed baseline before this
// PR: ~192k allocs per campaign run.)
func TestRunAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run is slow")
	}
	r := NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{})
	spec := &inject.FaultSpec{Function: "ReadFile", Param: 0, Invocation: 1, Type: inject.ZeroBits}
	// Warm the snapshot cache and pools outside the measurement.
	if _, err := r.Run(spec); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := r.Run(spec); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 2000
	if allocs > budget {
		t.Fatalf("run allocated %.0f objects, budget %d — pooling regressed", allocs, budget)
	}
	t.Logf("allocs/run = %.0f (budget %d)", allocs, budget)
}
