package core

import (
	"testing"

	"ntdts/internal/workload"
)

func faultFree(t *testing.T, def workload.Definition) *RunResult {
	t.Helper()
	r := NewRunner(def, RunnerOptions{})
	res, err := r.Run(nil)
	if err != nil {
		t.Fatalf("%s/%s fault-free run: %v", def.Name, def.Supervision, err)
	}
	return res
}

func TestFaultFreeRunsAreNormalSuccess(t *testing.T) {
	for _, s := range []workload.Supervision{workload.Standalone, workload.MSCS, workload.Watchd} {
		for _, def := range workload.StandardSet(s) {
			def := def
			t.Run(def.Name+"/"+s.String(), func(t *testing.T) {
				res := faultFree(t, def)
				if !res.Completed {
					t.Fatal("client did not finish")
				}
				if res.Outcome != NormalSuccess {
					t.Fatalf("outcome %v, want normal success (restarts=%d)", res.Outcome, res.Restarts)
				}
				if res.Restarts != 0 {
					t.Fatalf("%d spurious restarts", res.Restarts)
				}
				if res.ActivatedFns == 0 {
					t.Fatal("no activated functions recorded")
				}
				t.Logf("activated=%d responseSec=%.2f", res.ActivatedFns, res.ResponseSec)
			})
		}
	}
}
