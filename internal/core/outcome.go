// Package core implements the DTS tool itself: the experiment controller
// (the nested loops of the paper's Figure 1), the per-run lifecycle
// (prepare, start server, wait until up, run client, terminate, gather),
// the data collector (client records + NT event log + watchd log file),
// and the five-outcome classifier of §3. Unlike the paper's tool, the
// campaign loop executes on a worker pool (Campaign.Parallelism): runs
// are isolated simulations, so they parallelize without changing results.
package core

import "fmt"

// Outcome is the per-run classification of §3.
type Outcome int

const (
	// NormalSuccess: correct replies, no restarts, no retransmissions.
	NormalSuccess Outcome = iota + 1
	// RestartSuccess: a middleware-initiated server restart preceded a
	// correct reply, with no client retransmissions.
	RestartSuccess
	// RestartRetrySuccess: both a restart and at least one client
	// retransmission were needed.
	RestartRetrySuccess
	// RetrySuccess: at least one retransmission, no restart.
	RetrySuccess
	// Failure: some request never received a correct reply.
	Failure
	// HarnessHang is a supervisor classification, not one of the paper's
	// five: the run exceeded its wall-clock watchdog deadline (a live bug
	// in the harness or simulator, since virtual time already bounds
	// simulated hangs) and was abandoned. Quarantined runs carry it; it is
	// deliberately absent from AllOutcomes so the paper's five-outcome
	// distributions are unchanged.
	HarnessHang
)

// String names the outcome the way the paper's figures label them.
func (o Outcome) String() string {
	switch o {
	case NormalSuccess:
		return "normal success"
	case RestartSuccess:
		return "restart success"
	case RestartRetrySuccess:
		return "restart+retry success"
	case RetrySuccess:
		return "retry success"
	case Failure:
		return "failure"
	case HarnessHang:
		return "harness hang"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// AllOutcomes lists the five outcomes in the paper's presentation order.
func AllOutcomes() []Outcome {
	return []Outcome{NormalSuccess, RestartSuccess, RestartRetrySuccess, RetrySuccess, Failure}
}

// Classify derives the §3 outcome from the three observables the data
// collector gathers: whether every client request eventually got a correct
// reply, whether any request needed a retransmission, and how many
// middleware-initiated restarts the watchd log recorded. Exported because
// the conformance harness and reporting layers classify synthetic and
// replayed records through the same single decision procedure. Client
// failure dominates: restarts and retries never upgrade a run where some
// request went unanswered (the ambiguous restart-then-timeout case is a
// Failure, not a RestartSuccess).
func Classify(allSucceeded, anyRetried bool, restarts int) Outcome {
	switch {
	case !allSucceeded:
		return Failure
	case restarts > 0 && anyRetried:
		return RestartRetrySuccess
	case restarts > 0:
		return RestartSuccess
	case anyRetried:
		return RetrySuccess
	default:
		return NormalSuccess
	}
}
