package core

import (
	"context"
	"testing"

	"ntdts/internal/inject"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/workload"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		succeeded, retried bool
		restarts           int
		want               Outcome
	}{
		{true, false, 0, NormalSuccess},
		{true, false, 1, RestartSuccess},
		{true, true, 1, RestartRetrySuccess},
		{true, true, 0, RetrySuccess},
		{false, false, 0, Failure},
		{false, true, 2, Failure}, // restarts don't save a failed client
	}
	for _, c := range cases {
		if got := Classify(c.succeeded, c.retried, c.restarts); got != c.want {
			t.Errorf("Classify(%v,%v,%d) = %v, want %v", c.succeeded, c.retried, c.restarts, got, c.want)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	names := map[Outcome]string{
		NormalSuccess:       "normal success",
		RestartSuccess:      "restart success",
		RestartRetrySuccess: "restart+retry success",
		RetrySuccess:        "retry success",
		Failure:             "failure",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	if len(AllOutcomes()) != 5 {
		t.Fatal("AllOutcomes size")
	}
}

// smallCampaign runs Apache1 standalone with a single fault type to keep
// the campaign quick while exercising the full Figure 1 flow.
func smallCampaign(t *testing.T) *SetResult {
	t.Helper()
	c := NewCampaign(NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}),
		WithFaultTypes(inject.ZeroBits))
	set, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return set
}

func TestCampaignSkipRule(t *testing.T) {
	set := smallCampaign(t)
	// 551 injectable functions; Apache1 activates 13 functions of which
	// the zero-parameter ones are not injectable.
	if set.ActivatedFns != 13 {
		t.Fatalf("activated %d, want 13", set.ActivatedFns)
	}
	injectedFns := make(map[string]bool)
	for _, r := range set.Runs {
		injectedFns[r.Fault.Function] = true
	}
	if len(injectedFns)+set.SkippedFns != 551 {
		t.Fatalf("injected %d + skipped %d functions != 551", len(injectedFns), set.SkippedFns)
	}
	if set.SkippedFaults == 0 {
		t.Fatal("no skipped faults recorded")
	}
}

func TestCampaignEveryRunInjected(t *testing.T) {
	set := smallCampaign(t)
	if len(set.Runs) == 0 {
		t.Fatal("no runs")
	}
	for _, r := range set.Runs {
		if !r.Injected {
			t.Errorf("fault %v did not fire despite calibration saying the function is called", r.Fault)
		}
		if !r.Activated {
			t.Errorf("fault %v not marked activated", r.Fault)
		}
	}
}

func TestCampaignProgressCallback(t *testing.T) {
	var last, total int
	c := NewCampaign(NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}),
		WithFaultTypes(inject.ZeroBits),
		WithProgress(func(done, n int) {
			last, total = done, n
		}))
	set, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if last != total || total != len(set.Runs) {
		t.Fatalf("progress ended at %d/%d with %d runs", last, total, len(set.Runs))
	}
}

func TestDistributionSumsToTotal(t *testing.T) {
	set := smallCampaign(t)
	d := set.Distribution()
	sum := 0
	for _, n := range d.Counts {
		sum += n
	}
	if sum != d.Total || d.Total != set.Injected() {
		t.Fatalf("counts sum %d, total %d, injected %d", sum, d.Total, set.Injected())
	}
	pctSum := 0.0
	for _, o := range AllOutcomes() {
		pctSum += d.Pct[o.String()]
	}
	if pctSum < 99.9 || pctSum > 100.1 {
		t.Fatalf("percentages sum to %.2f", pctSum)
	}
}

func TestResponseTimesOnlyCompleted(t *testing.T) {
	set := smallCampaign(t)
	for _, o := range AllOutcomes() {
		for _, x := range set.ResponseTimes(o, true) {
			if x <= 0 {
				t.Fatalf("%v response time %.2f", o, x)
			}
		}
	}
	// Wrong-reply-only filtering never yields more samples.
	all := len(set.ResponseTimes(Failure, false))
	wrong := len(set.ResponseTimes(Failure, true))
	if wrong > all {
		t.Fatalf("wrong-reply failures %d > all failures %d", wrong, all)
	}
}

func TestCommonInjected(t *testing.T) {
	a := &SetResult{Runs: []RunResult{
		{Fault: inject.FaultSpec{Function: "F", Param: 0, Invocation: 1, Type: inject.ZeroBits}, Injected: true, Outcome: Failure},
		{Fault: inject.FaultSpec{Function: "G", Param: 0, Invocation: 1, Type: inject.ZeroBits}, Injected: true, Outcome: NormalSuccess},
		{Fault: inject.FaultSpec{Function: "H", Param: 0, Invocation: 1, Type: inject.ZeroBits}, Injected: false},
	}}
	b := &SetResult{Runs: []RunResult{
		{Fault: inject.FaultSpec{Function: "F", Param: 0, Invocation: 1, Type: inject.ZeroBits}, Injected: true, Outcome: NormalSuccess},
		{Fault: inject.FaultSpec{Function: "H", Param: 0, Invocation: 1, Type: inject.ZeroBits}, Injected: true, Outcome: NormalSuccess},
	}}
	ar, br := CommonInjected(a, b)
	if len(ar) != 1 || len(br) != 1 {
		t.Fatalf("common %d/%d, want 1/1", len(ar), len(br))
	}
	if ar[0].Fault.Function != "F" || br[0].Fault.Function != "F" {
		t.Fatalf("common fault %v/%v", ar[0].Fault, br[0].Fault)
	}
	if ar[0].Outcome != Failure || br[0].Outcome != NormalSuccess {
		t.Fatal("outcomes not preserved per side")
	}
}

func TestExperimentFind(t *testing.T) {
	exp := &Experiment{Sets: []*SetResult{
		{Workload: "IIS", Supervision: "none"},
		{Workload: "IIS", Supervision: "MSCS"},
		{Workload: "SQL", Supervision: "none"},
	}}
	if _, ok := exp.Find("IIS", "MSCS"); !ok {
		t.Fatal("Find missed")
	}
	if _, ok := exp.Find("IIS", "watchd"); ok {
		t.Fatal("Find invented a set")
	}
	wls := exp.Workloads()
	if len(wls) != 2 || wls[0] != "IIS" || wls[1] != "SQL" {
		t.Fatalf("Workloads %v", wls)
	}
}

// TestExperimentFlow verifies the Figure 1 run lifecycle end to end for a
// fault that needs every stage: injection at server start, client retry,
// middleware restart, and log-based restart detection.
func TestExperimentFlow(t *testing.T) {
	fault := inject.FaultSpec{Function: "GetVersionExA", Param: 0, Invocation: 1, Type: inject.FlipBits}
	runner := NewRunner(workload.NewIIS(workload.Watchd), RunnerOptions{})
	res, err := runner.Run(&fault)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Injected || !res.Activated {
		t.Fatalf("fault not injected: %+v", res)
	}
	if !res.ServerCrash {
		t.Fatal("wild-pointer fault did not crash the server")
	}
	if res.Restarts == 0 {
		t.Fatal("watchd restart not detected from the log")
	}
	if res.Outcome != RestartSuccess && res.Outcome != RestartRetrySuccess {
		t.Fatalf("outcome %v, want a restart success", res.Outcome)
	}
	if !res.Completed || res.ResponseSec <= 0 {
		t.Fatalf("client did not complete: %+v", res)
	}
}

// TestPaperFaithfulSkips checks the alternative skip procedure: one probe
// per unactivated function, identical outcome data.
func TestPaperFaithfulSkips(t *testing.T) {
	fast := smallCampaign(t) // calibration-informed skips
	c := NewCampaign(NewRunner(workload.NewApache1(workload.Standalone), RunnerOptions{}),
		WithFaultTypes(inject.ZeroBits),
		WithPaperFaithfulSkips())
	faithful, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The faithful campaign carries one extra (skipped, uninjected) run
	// per unactivated function.
	if got, want := len(faithful.Runs), len(fast.Runs)+faithful.SkippedFns; got != want {
		t.Fatalf("faithful runs %d, want %d", got, want)
	}
	skipped := 0
	for _, r := range faithful.Runs {
		if r.Skipped {
			skipped++
			if r.Injected {
				t.Fatalf("skip probe %v injected", r.Fault)
			}
		}
	}
	if skipped != faithful.SkippedFns {
		t.Fatalf("%d skip probes, want %d", skipped, faithful.SkippedFns)
	}
	// The outcome distribution (over injected faults) is identical.
	df, dn := faithful.Distribution(), fast.Distribution()
	if df.Total != dn.Total {
		t.Fatalf("injected totals differ: %d vs %d", df.Total, dn.Total)
	}
	for k, v := range dn.Counts {
		if df.Counts[k] != v {
			t.Fatalf("outcome %q: %d vs %d", k, df.Counts[k], v)
		}
	}
}

func TestDiffSets(t *testing.T) {
	spec := func(fn string) inject.FaultSpec {
		return inject.FaultSpec{Function: fn, Param: 0, Invocation: 1, Type: inject.ZeroBits}
	}
	a := &SetResult{Runs: []RunResult{
		{Fault: spec("F"), Injected: true, Outcome: Failure},
		{Fault: spec("G"), Injected: true, Outcome: NormalSuccess},
		{Fault: spec("H"), Injected: true, Outcome: RetrySuccess},
		{Fault: spec("OnlyA"), Injected: true, Outcome: Failure},
	}}
	b := &SetResult{Runs: []RunResult{
		{Fault: spec("F"), Injected: true, Outcome: RestartSuccess}, // improved
		{Fault: spec("G"), Injected: true, Outcome: Failure},        // regressed
		{Fault: spec("H"), Injected: true, Outcome: RetrySuccess},   // unchanged
		{Fault: spec("OnlyB"), Injected: true, Outcome: Failure},
	}}
	ts := DiffSets(a, b)
	if len(ts) != 2 {
		t.Fatalf("%d transitions, want 2: %v", len(ts), ts)
	}
	if ts[0].Fault.Function != "F" || ts[0].From != Failure || ts[0].To != RestartSuccess {
		t.Fatalf("transition 0: %+v", ts[0])
	}
	s := SummarizeTransitions(ts)
	if s.Improved != 1 || s.Regressed != 1 || s.Shifted != 0 {
		t.Fatalf("summary %+v", s)
	}
}

// TestDiffAcrossWatchdVersions ties the diff to the real campaign: moving
// from Watchd2 to Watchd3 on SQL must improve faults (the locked-start
// recoveries) and regress none.
func TestDiffAcrossWatchdVersions(t *testing.T) {
	run := func(v int) *SetResult {
		opts := RunnerOptions{}
		opts.WatchdVersion = watchd.Version(v)
		c := NewCampaign(NewRunner(workload.NewSQL(workload.Watchd), opts))
		set, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	v2, v3 := run(2), run(3)
	ts := DiffSets(v2, v3)
	s := SummarizeTransitions(ts)
	if s.Improved == 0 {
		t.Fatal("Watchd3 improved nothing over Watchd2 on SQL")
	}
	if s.Regressed != 0 {
		t.Fatalf("Watchd3 regressed %d faults over Watchd2", s.Regressed)
	}
	// Every improved fault's recovery is a restart-class success.
	for _, tr := range ts {
		if tr.From == Failure && tr.To != RestartSuccess && tr.To != RestartRetrySuccess {
			t.Fatalf("unexpected recovery class: %+v", tr)
		}
	}
}
