package httpwire

import (
	"bytes"
	"testing"
	"testing/quick"
)

// loopConn is an in-memory Conn for tests.
type loopConn struct {
	buf    bytes.Buffer
	broken bool
}

func (l *loopConn) Read(buf []byte) (int, bool) {
	if l.broken && l.buf.Len() == 0 {
		return 0, false
	}
	if l.buf.Len() == 0 {
		return 0, false // tests never block
	}
	n, _ := l.buf.Read(buf)
	return n, true
}

func (l *loopConn) Write(data []byte) bool {
	if l.broken {
		return false
	}
	l.buf.Write(data)
	return true
}

func TestRequestRoundtrip(t *testing.T) {
	c := &loopConn{}
	if !WriteRequest(c, Request{Method: "GET", Path: "/index.html"}) {
		t.Fatal("WriteRequest failed")
	}
	req, ok := ReadRequest(c)
	if !ok || req.Method != "GET" || req.Path != "/index.html" {
		t.Fatalf("ReadRequest = %+v, %v", req, ok)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	c := &loopConn{}
	body := bytes.Repeat([]byte("x"), 115*1024)
	if !WriteResponse(c, Response{Status: 200, Body: body}) {
		t.Fatal("WriteResponse failed")
	}
	resp, ok := ReadResponse(c)
	if !ok || resp.Status != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("ReadResponse status=%d len=%d ok=%v", resp.Status, len(resp.Body), ok)
	}
}

func TestEmptyBodyResponse(t *testing.T) {
	c := &loopConn{}
	WriteResponse(c, Response{Status: 404})
	resp, ok := ReadResponse(c)
	if !ok || resp.Status != 404 || len(resp.Body) != 0 {
		t.Fatalf("resp=%+v ok=%v", resp, ok)
	}
}

func TestMalformedRequestLine(t *testing.T) {
	for _, raw := range []string{
		"GARBAGE\r\n\r\n",
		"GET /x\r\n\r\n",
		"GET /x NOTHTTP\r\n\r\n",
		"\r\n\r\n",
	} {
		c := &loopConn{}
		c.buf.WriteString(raw)
		if _, ok := ReadRequest(c); ok {
			t.Errorf("accepted malformed request %q", raw)
		}
	}
}

func TestMalformedResponses(t *testing.T) {
	for _, raw := range []string{
		"HTTP/1.0 abc OK\r\nContent-Length: 2\r\n\r\nhi",
		"HTTP/1.0 99 X\r\nContent-Length: 2\r\n\r\nhi",
		"HTTP/1.0 200 OK\r\n\r\n",                           // no Content-Length
		"HTTP/1.0 200 OK\r\nContent-Length: -5\r\n\r\n",     // negative
		"HTTP/1.0 200 OK\r\nContent-Length: 999999\r\n\r\n", // truncated body
		"NOPE 200\r\nContent-Length: 0\r\n\r\n",
	} {
		c := &loopConn{}
		c.buf.WriteString(raw)
		if _, ok := ReadResponse(c); ok {
			t.Errorf("accepted malformed response %q", raw)
		}
	}
}

func TestHeaderFlood(t *testing.T) {
	c := &loopConn{}
	c.buf.Write(bytes.Repeat([]byte("AAAA"), 10000)) // no blank line
	if _, ok := ReadRequest(c); ok {
		t.Fatal("accepted unbounded header")
	}
}

func TestBrokenConnection(t *testing.T) {
	c := &loopConn{broken: true}
	if WriteRequest(c, Request{Method: "GET", Path: "/"}) {
		t.Fatal("write on broken conn succeeded")
	}
	if _, ok := ReadResponse(c); ok {
		t.Fatal("read on broken conn succeeded")
	}
}

func TestBodySplitAcrossReads(t *testing.T) {
	// Bodies arriving in fragments must reassemble.
	c := &loopConn{}
	WriteResponse(c, Response{Status: 200, Body: []byte("hello world")})
	// Move everything into a fragmenting conn.
	frag := &fragConn{data: c.buf.Bytes(), chunk: 3}
	resp, ok := ReadResponse(frag)
	if !ok || string(resp.Body) != "hello world" {
		t.Fatalf("resp=%+v ok=%v", resp, ok)
	}
}

type fragConn struct {
	data  []byte
	chunk int
}

func (f *fragConn) Read(buf []byte) (int, bool) {
	if len(f.data) == 0 {
		return 0, false
	}
	n := f.chunk
	if n > len(f.data) || n > len(buf) {
		n = min(len(f.data), len(buf))
	}
	copy(buf, f.data[:n])
	f.data = f.data[n:]
	return n, true
}

func (f *fragConn) Write([]byte) bool { return false }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: any response body survives a write/read roundtrip byte-exact.
func TestPropertyResponseRoundtrip(t *testing.T) {
	f := func(status uint8, body []byte) bool {
		st := 200 + int(status)%200
		c := &loopConn{}
		if !WriteResponse(c, Response{Status: st, Body: body}) {
			return false
		}
		resp, ok := ReadResponse(c)
		return ok && resp.Status == st && bytes.Equal(resp.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: request paths without whitespace or control bytes roundtrip.
func TestPropertyRequestRoundtrip(t *testing.T) {
	f := func(seed []byte) bool {
		path := "/"
		for _, b := range seed {
			ch := byte('a' + b%26)
			path += string(ch)
		}
		c := &loopConn{}
		if !WriteRequest(c, Request{Method: "GET", Path: path}) {
			return false
		}
		req, ok := ReadRequest(c)
		return ok && req.Method == "GET" && req.Path == path
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
