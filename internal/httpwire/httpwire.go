// Package httpwire implements a minimal HTTP/1.0 message layer over an
// abstract byte-stream connection. Both the simulated web servers (Apache,
// IIS) and the DTS HttpClient workload speak this format over simulated
// named pipes. The parser is deliberately defensive: a fault-injected
// server can emit truncated or corrupted bytes, and the client must detect
// that as an incorrect reply rather than misbehave.
package httpwire

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Conn is the transport the message layer runs over. Implementations wrap
// simulated pipe handles; ok=false signals a broken connection.
type Conn interface {
	// Read fills buf, returning the byte count; ok=false on error/EOF.
	Read(buf []byte) (n int, ok bool)
	// Write sends data fully; ok=false on error.
	Write(data []byte) (ok bool)
}

// Request is an HTTP request line (headers beyond Host are not modeled).
type Request struct {
	Method string
	Path   string
}

// Response is a parsed HTTP response.
type Response struct {
	Status int
	Body   []byte
}

// maxHeaderBytes bounds header scanning so corrupted streams terminate.
const maxHeaderBytes = 8 * 1024

// maxBodyBytes bounds bodies so a corrupted Content-Length terminates.
const maxBodyBytes = 4 * 1024 * 1024

// WriteRequest serializes a request onto the connection.
func WriteRequest(c Conn, req Request) bool {
	line := fmt.Sprintf("%s %s HTTP/1.0\r\nHost: ntlab1\r\n\r\n", req.Method, req.Path)
	return c.Write([]byte(line))
}

// ReadRequest parses a request from the connection.
func ReadRequest(c Conn) (Request, bool) {
	head, _, ok := readUntilBlankLine(c, nil)
	if !ok {
		return Request{}, false
	}
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return Request{}, false
	}
	parts := strings.Fields(lines[0])
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return Request{}, false
	}
	return Request{Method: parts[0], Path: parts[1]}, true
}

// WriteResponse serializes a response with a Content-Length header.
func WriteResponse(c Conn, resp Response) bool {
	head := fmt.Sprintf("HTTP/1.0 %d %s\r\nContent-Length: %d\r\nContent-Type: text/html\r\n\r\n",
		resp.Status, statusText(resp.Status), len(resp.Body))
	if !c.Write([]byte(head)) {
		return false
	}
	if len(resp.Body) == 0 {
		return true
	}
	return c.Write(resp.Body)
}

// ReadResponse parses a response, reading exactly Content-Length body bytes.
func ReadResponse(c Conn) (Response, bool) {
	head, rest, ok := readUntilBlankLine(c, nil)
	if !ok {
		return Response{}, false
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.Fields(lines[0])
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return Response{}, false
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil || status < 100 || status > 599 {
		return Response{}, false
	}
	length := -1
	for _, line := range lines[1:] {
		if eq := strings.IndexByte(line, ':'); eq > 0 {
			name := strings.TrimSpace(line[:eq])
			if strings.EqualFold(name, "Content-Length") {
				v, err := strconv.Atoi(strings.TrimSpace(line[eq+1:]))
				if err != nil || v < 0 || v > maxBodyBytes {
					return Response{}, false
				}
				length = v
			}
		}
	}
	if length < 0 {
		return Response{}, false
	}
	body := make([]byte, 0, length)
	body = append(body, rest...)
	var buf [4096]byte
	for len(body) < length {
		n, ok := c.Read(buf[:])
		if !ok || n == 0 {
			return Response{}, false
		}
		body = append(body, buf[:n]...)
	}
	if len(body) > length {
		body = body[:length]
	}
	return Response{Status: status, Body: body}, true
}

// readUntilBlankLine reads until "\r\n\r\n", returning the header text and
// any extra bytes read past the delimiter.
func readUntilBlankLine(c Conn, initial []byte) (head string, rest []byte, ok bool) {
	data := append([]byte(nil), initial...)
	var buf [1024]byte
	for {
		if i := bytes.Index(data, headerEnd); i >= 0 {
			return string(data[:i]), data[i+4:], true
		}
		if len(data) > maxHeaderBytes {
			return "", nil, false
		}
		n, okRead := c.Read(buf[:])
		if !okRead || n == 0 {
			return "", nil, false
		}
		data = append(data, buf[:n]...)
	}
}

var headerEnd = []byte("\r\n\r\n")

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Unknown"
	}
}
