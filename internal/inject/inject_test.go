package inject

import (
	"testing"
	"testing/quick"

	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
)

func TestFaultTypeApply(t *testing.T) {
	cases := []struct {
		typ  FaultType
		in   uint64
		want uint64
	}{
		{ZeroBits, 0xDEADBEEF, 0},
		{ZeroBits, 0, 0},
		{OneBits, 0, 0xFFFFFFFF},
		{OneBits, 0x1234, 0xFFFFFFFF},
		{FlipBits, 0, 0xFFFFFFFF},
		{FlipBits, 0xFFFFFFFF, 0},
		{FlipBits, 0x0000FFFF, 0xFFFF0000},
	}
	for _, c := range cases {
		if got := c.typ.Apply(c.in); got != c.want {
			t.Errorf("%v.Apply(%#x) = %#x, want %#x", c.typ, c.in, got, c.want)
		}
	}
}

// Property: FlipBits is an involution on 32-bit values; ZeroBits and
// OneBits are idempotent.
func TestPropertyFaultTypeAlgebra(t *testing.T) {
	f := func(v uint32) bool {
		x := uint64(v)
		return FlipBits.Apply(FlipBits.Apply(x)) == x &&
			ZeroBits.Apply(ZeroBits.Apply(x)) == ZeroBits.Apply(x) &&
			OneBits.Apply(OneBits.Apply(x)) == OneBits.Apply(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultSpecString(t *testing.T) {
	s := FaultSpec{Function: "ReadFile", Param: 2, Invocation: 1, Type: ZeroBits}
	if got := s.String(); got != "ReadFile p2 i1 zero" {
		t.Fatalf("String() = %q", got)
	}
}

// runWorkload spawns a target making a known call sequence and returns the
// injector after the simulation drains.
func runWorkload(t *testing.T, spec *FaultSpec, target TargetSelector) (*Injector, *ntsim.Process) {
	t.Helper()
	k := ntsim.NewKernel()
	in := New(k, target, spec)
	k.SetInterceptor(in)
	k.RegisterImage("target.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		h := a.CreateFileA(`C:\f`, win32.GenericRead|win32.GenericWrite, 0, win32.CreateAlways, 0)
		var n uint32
		a.WriteFile(h, []byte("abc"), 3, &n)
		a.SetFilePointer(h, 0, win32.FileBegin)
		a.ReadFile(h, make([]byte, 4), 3, &n) // invocation 1
		a.SetFilePointer(h, 0, win32.FileBegin)
		a.ReadFile(h, make([]byte, 4), 3, &n) // invocation 2
		a.CloseHandle(h)
		return 0
	})
	k.RegisterImage("bystander.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		h := a.CreateFileA(`C:\g`, win32.GenericWrite, 0, win32.CreateAlways, 0)
		var n uint32
		a.WriteFile(h, []byte("zz"), 2, &n)
		a.CloseHandle(h)
		return 0
	})
	p, err := k.Spawn("target.exe", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("bystander.exe", "", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && k.Step(); i++ {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	return in, p
}

func TestObserverRecordsActivation(t *testing.T) {
	in, _ := runWorkload(t, nil, ByImage("target.exe"))
	if !in.Activated("ReadFile") || !in.Activated("WriteFile") || !in.Activated("CreateFileA") {
		t.Fatal("expected functions not recorded as activated")
	}
	if in.Activated("CreateProcessA") {
		t.Fatal("uncalled function recorded as activated")
	}
	if in.CallCount("ReadFile") != 2 {
		t.Fatalf("ReadFile count %d, want 2", in.CallCount("ReadFile"))
	}
	if in.Injected() {
		t.Fatal("observer injected a fault")
	}
	if in.ActivatedCount() < 4 {
		t.Fatalf("activated %d functions", in.ActivatedCount())
	}
}

func TestInjectsOnlyFirstInvocation(t *testing.T) {
	spec := &FaultSpec{Function: "ReadFile", Param: 2, Invocation: 1, Type: ZeroBits}
	in, p := runWorkload(t, spec, ByImage("target.exe"))
	if !in.Injected() {
		t.Fatal("fault did not fire")
	}
	ev := in.Events()
	if len(ev) != 1 {
		t.Fatalf("injected %d times, want 1", len(ev))
	}
	if ev[0].Before != 3 || ev[0].After != 0 {
		t.Fatalf("event %+v", ev[0])
	}
	if p.ExitCode() != 0 {
		t.Fatalf("zero-count read should be benign; exit 0x%X", p.ExitCode())
	}
}

func TestInjectsSecondInvocation(t *testing.T) {
	spec := &FaultSpec{Function: "ReadFile", Param: 2, Invocation: 2, Type: ZeroBits}
	in, _ := runWorkload(t, spec, ByImage("target.exe"))
	if !in.Injected() {
		t.Fatal("fault did not fire on invocation 2")
	}
	if in.Events()[0].Before != 3 {
		t.Fatalf("event %+v", in.Events()[0])
	}
}

func TestPointerFlipKillsTarget(t *testing.T) {
	spec := &FaultSpec{Function: "ReadFile", Param: 1, Invocation: 1, Type: FlipBits}
	in, p := runWorkload(t, spec, ByImage("target.exe"))
	if !in.Injected() {
		t.Fatal("fault did not fire")
	}
	if p.ExitCode() != ntsim.ExitAccessViolation {
		t.Fatalf("exit 0x%X, want access violation", p.ExitCode())
	}
}

func TestBystanderIsNeverInjected(t *testing.T) {
	spec := &FaultSpec{Function: "WriteFile", Param: 1, Invocation: 1, Type: FlipBits}
	in, p := runWorkload(t, spec, ByImage("target.exe"))
	if !in.Injected() {
		t.Fatal("fault did not fire in target")
	}
	// Target dies, but the bystander's WriteFile must be untouched: it
	// exited 0 (checked by absence of panics and by activation below).
	if p.ExitCode() != ntsim.ExitAccessViolation {
		t.Fatalf("target exit 0x%X", p.ExitCode())
	}
	if in.Activated("CloseHandle") {
		// Target died before CloseHandle; bystander calls must not
		// leak into the target's activation set.
		t.Fatal("bystander activation leaked into target set")
	}
}

func TestUninjectableParamIndexDoesNotFire(t *testing.T) {
	spec := &FaultSpec{Function: "ReadFile", Param: 97, Invocation: 1, Type: ZeroBits}
	in, p := runWorkload(t, spec, ByImage("target.exe"))
	if in.Injected() {
		t.Fatal("out-of-range parameter injected")
	}
	if p.ExitCode() != 0 {
		t.Fatalf("exit 0x%X", p.ExitCode())
	}
}

func TestParentAndChildSelectors(t *testing.T) {
	k := ntsim.NewKernel()
	var calls []string
	in := New(k, ChildProcessOf("apache.exe"), nil)
	k.SetInterceptor(&recorder{in: in, calls: &calls})
	k.RegisterImage("apache.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		if p.Parent == 0 || k.Process(p.Parent).Image != "apache.exe" {
			// Master: spawn one child, then idle briefly.
			var pi win32.ProcessInformation
			a.CreateProcessA("apache.exe", "apache.exe -child", nil, &pi)
			a.WaitForSingleObject(pi.HProcess, win32.Infinite)
			return 0
		}
		// Child: do child work.
		a.GetTickCount()
		return 0
	})
	if _, err := k.Spawn("apache.exe", "apache.exe", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && k.Step(); i++ {
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	// The child selector must see GetTickCount but not CreateProcessA.
	if !in.Activated("GetTickCount") {
		t.Fatal("child call not recorded")
	}
	if in.Activated("CreateProcessA") {
		t.Fatal("master call recorded under child selector")
	}

	// And the parent selector the other way around.
	k2 := ntsim.NewKernel()
	in2 := New(k2, ParentProcessOf("apache.exe"), nil)
	k2.SetInterceptor(in2)
	k2.RegisterImage("apache.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		if p.Parent == 0 || k2.Process(p.Parent).Image != "apache.exe" {
			var pi win32.ProcessInformation
			a.CreateProcessA("apache.exe", "apache.exe -child", nil, &pi)
			a.WaitForSingleObject(pi.HProcess, win32.Infinite)
			return 0
		}
		a.GetTickCount()
		return 0
	})
	if _, err := k2.Spawn("apache.exe", "apache.exe", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000 && k2.Step(); i++ {
	}
	if !in2.Activated("CreateProcessA") {
		t.Fatal("master call not recorded under parent selector")
	}
	if in2.Activated("GetTickCount") {
		t.Fatal("child call recorded under parent selector")
	}
}

// recorder wraps an Injector, also capturing the call stream.
type recorder struct {
	in    *Injector
	calls *[]string
}

func (r *recorder) BeforeSyscall(pid ntsim.PID, image, fn string, raw []uint64) {
	*r.calls = append(*r.calls, fn)
	r.in.BeforeSyscall(pid, image, fn, raw)
}
