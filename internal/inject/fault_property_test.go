package inject

import (
	"math/rand"
	"testing"
	"time"

	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
)

// Algebraic properties of the paper's three corruptions. The consequence
// model leans on these: a re-flipped value round-trips, saturating faults
// are stable under re-injection, and no corruption can manufacture a valid
// NT handle out of a live one.

// TestFlipBitsIsInvolution: flipping twice restores the 32-bit value (NT
// parameters are 32-bit machine words, so the round trip is through the
// low word).
func TestFlipBitsIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.Uint64()
		if got := FlipBits.Apply(FlipBits.Apply(v)); got != uint64(uint32(v)) {
			t.Fatalf("FlipBits(FlipBits(%#x)) = %#x, want %#x", v, got, uint64(uint32(v)))
		}
	}
}

// TestSaturatingFaultsIdempotent: zero and ones are fixed points of their
// own corruption — injecting twice equals injecting once.
func TestSaturatingFaultsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := rng.Uint64()
		for _, ft := range []FaultType{ZeroBits, OneBits} {
			once := ft.Apply(v)
			if twice := ft.Apply(once); twice != once {
				t.Fatalf("%s not idempotent: %#x -> %#x -> %#x", ft, v, once, twice)
			}
		}
	}
	if ZeroBits.Apply(0xDEADBEEF) != 0 {
		t.Fatal("ZeroBits must clear every bit")
	}
	if OneBits.Apply(0) != 0xFFFFFFFF {
		t.Fatal("OneBits must set all 32 bits")
	}
}

// TestCorruptionStaysInMachineWord: every corrupted value fits in 32 bits,
// whatever garbage sat in the high half.
func TestCorruptionStaysInMachineWord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := rng.Uint64()
		for _, ft := range AllFaultTypes() {
			if got := ft.Apply(v); got > 0xFFFFFFFF {
				t.Fatalf("%s.Apply(%#x) = %#x exceeds the 32-bit parameter word", ft, v, got)
			}
		}
	}
}

// TestCorruptedHandleNeverValid: NT handles are nonzero multiples of 4, so
// no corruption of a valid handle can alias another valid handle — zero
// gives the NULL pseudo-handle, ones gives INVALID_HANDLE_VALUE, and a
// flip always sets the two tag bits.
func TestCorruptedHandleNeverValid(t *testing.T) {
	for h := uint64(4); h <= 4096; h += 4 {
		if got := ZeroBits.Apply(h); got != 0 {
			t.Fatalf("ZeroBits(%#x) = %#x, want the NULL handle", h, got)
		}
		if got := OneBits.Apply(h); got != uint64(ntsim.InvalidHandle) {
			t.Fatalf("OneBits(%#x) = %#x, want INVALID_HANDLE_VALUE", h, got)
		}
		if got := FlipBits.Apply(h); got%4 != 3 {
			t.Fatalf("FlipBits(%#x) = %#x, still congruent to a handle slot", h, got)
		}
	}
}

// TestHandleCorruptionNeverHitsForeignHandle is the live half of the
// property: a process holding several open handles corrupts the handle it
// passes to CloseHandle; the call must fail with ERROR_INVALID_HANDLE and
// every live handle — including the nominal target — must survive. Silent
// success here would mean a fault quietly destroyed a foreign object, which
// would make the paper's "no visible effect" class unsound.
func TestHandleCorruptionNeverHitsForeignHandle(t *testing.T) {
	for _, ft := range AllFaultTypes() {
		k := ntsim.NewKernel()
		spec := &FaultSpec{Function: "CloseHandle", Param: 0, Invocation: 1, Type: ft}
		injector := New(k, ByImage("h.exe"), spec)
		k.SetInterceptor(injector)
		k.RegisterImage("h.exe", func(p *ntsim.Process) uint32 {
			a := win32.New(p)
			var handles []ntsim.Handle
			for i := 0; i < 5; i++ {
				handles = append(handles, p.NewHandle(ntsim.NewEvent("", true, false)))
			}
			if a.CloseHandle(handles[2]) { // the injector corrupts this handle
				t.Errorf("%s: CloseHandle on corrupted handle reported success", ft)
			}
			if e := a.GetLastError(); e != ntsim.ErrInvalidHandle {
				t.Errorf("%s: corrupted close set %v, want ERROR_INVALID_HANDLE", ft, e)
			}
			if p.HandleCount() != 5 {
				t.Errorf("%s: corrupted close destroyed a live handle (%d of 5 remain)", ft, p.HandleCount())
			}
			for _, h := range handles {
				if p.Resolve(h) == nil {
					t.Errorf("%s: handle %#x no longer resolves after corrupted close", ft, h)
				}
			}
			return 0
		})
		if _, err := k.Spawn("h.exe", "h.exe", 0); err != nil {
			t.Fatal(err)
		}
		k.RunFor(time.Second)
		if !injector.Injected() {
			t.Fatalf("%s: fault never fired", ft)
		}
		k.KillAll()
	}
}
