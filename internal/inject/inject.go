// Package inject implements the DTS fault-injection mechanism: interception
// of KERNEL32 calls and corruption of call parameters (paper §3). The
// injector sits on the kernel's system-call dispatch path — the simulation
// analogue of the DLL-interposition shim the original tool used — and
// applies exactly the paper's three corruption types to one parameter of
// one invocation of one function per run.
package inject

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"ntdts/internal/ntsim"
	"ntdts/internal/telemetry"
)

// FaultType is one of the paper's three parameter corruptions.
type FaultType int

const (
	// ZeroBits resets all bits of the parameter to zero.
	ZeroBits FaultType = iota + 1
	// OneBits sets all bits of the parameter to one.
	OneBits
	// FlipBits takes the one's complement of the parameter value.
	FlipBits
)

// String names the fault type the way the paper does.
func (t FaultType) String() string {
	switch t {
	case ZeroBits:
		return "zero"
	case OneBits:
		return "ones"
	case FlipBits:
		return "flip"
	default:
		return fmt.Sprintf("FaultType(%d)", int(t))
	}
}

// AllFaultTypes lists the paper's corruption set in its canonical order.
func AllFaultTypes() []FaultType { return []FaultType{ZeroBits, OneBits, FlipBits} }

// Apply corrupts a raw parameter value. NT parameters are 32-bit machine
// words, so corruption operates on the low 32 bits.
func (t FaultType) Apply(v uint64) uint64 {
	switch t {
	case ZeroBits:
		return 0
	case OneBits:
		return 0xFFFFFFFF
	case FlipBits:
		return uint64(^uint32(v))
	default:
		return v
	}
}

// FaultSpec identifies a single fault: which function, which parameter,
// which invocation, which corruption.
type FaultSpec struct {
	Function   string    `json:"function"`
	Param      int       `json:"param"`      // 0-based parameter index
	Invocation int       `json:"invocation"` // 1-based; the paper injects the first
	Type       FaultType `json:"type"`

	// Node addresses the fault to one cluster node's kernel (0-based).
	// Zero means node 0, which is also the only node of a single-host
	// run, so legacy four-field keys and fault lists parse unchanged.
	Node int `json:"node,omitempty"`
}

// String renders the spec in fault-list file syntax.
func (s FaultSpec) String() string {
	if s.Node != 0 {
		return fmt.Sprintf("%s p%d i%d %s node=%d", s.Function, s.Param, s.Invocation, s.Type, s.Node)
	}
	return fmt.Sprintf("%s p%d i%d %s", s.Function, s.Param, s.Invocation, s.Type)
}

// Site is a fault's activation site: the (function, invocation) pair at
// which the injector arms. Every run sharing a site executes the identical
// deterministic prefix up to activation — the property that lets the
// campaign engine resume such runs from a shared kernel snapshot instead
// of re-booting (the paper's §3 methodology makes each fault a pure suffix
// divergence).
type Site struct {
	Function   string `json:"function"`
	Invocation int    `json:"invocation"`
}

// Site returns the spec's activation site.
func (s FaultSpec) Site() Site {
	return Site{Function: s.Function, Invocation: s.Invocation}
}

// Key returns the canonical identity of the spec: the string two specs
// share exactly when they describe the same fault. It is the basis for
// cross-set run matching and for the journal fingerprint.
func (s FaultSpec) Key() string {
	if s.Node != 0 {
		return fmt.Sprintf("%s/%d/%d/%d/%d", s.Function, s.Param, s.Invocation, int(s.Type), s.Node)
	}
	return fmt.Sprintf("%s/%d/%d/%d", s.Function, s.Param, s.Invocation, int(s.Type))
}

// ParseKey inverts Key. The results journal records each planned job by
// key, so a resumed campaign can rebuild its fault list from the journal
// alone, with no dependency on the original fault-list file surviving.
func ParseKey(key string) (FaultSpec, error) {
	parts := strings.Split(key, "/")
	if len(parts) != 4 && len(parts) != 5 {
		return FaultSpec{}, fmt.Errorf("fault key %q: want 4 or 5 fields", key)
	}
	param, err := strconv.Atoi(parts[1])
	if err != nil || param < 0 {
		return FaultSpec{}, fmt.Errorf("fault key %q: bad param", key)
	}
	inv, err := strconv.Atoi(parts[2])
	if err != nil || inv < 1 {
		return FaultSpec{}, fmt.Errorf("fault key %q: bad invocation", key)
	}
	typ, err := strconv.Atoi(parts[3])
	if err != nil || typ < 1 {
		return FaultSpec{}, fmt.Errorf("fault key %q: bad type", key)
	}
	node := 0
	if len(parts) == 5 {
		node, err = strconv.Atoi(parts[4])
		if err != nil || node < 0 {
			return FaultSpec{}, fmt.Errorf("fault key %q: bad node", key)
		}
	}
	return FaultSpec{Function: parts[0], Param: param, Invocation: inv, Type: FaultType(typ), Node: node}, nil
}

// Fingerprint returns a short stable hash of Key — the identifier the
// results journal keys records by and the campaign engine includes in
// run-failure errors, so a failed run is greppable in the journal by the
// same string the error names.
func (s FaultSpec) Fingerprint() string {
	h := fnv.New64a()
	io.WriteString(h, s.Key())
	return fmt.Sprintf("%016x", h.Sum64())
}

// TargetSelector decides whether a process belongs to the injection target.
// The paper's tool targets one process of the workload (e.g. the Apache
// management process but not its child, or vice versa).
type TargetSelector func(k *ntsim.Kernel, pid ntsim.PID, image string) bool

// ByImage targets every process running the named image.
func ByImage(image string) TargetSelector {
	return func(_ *ntsim.Kernel, _ ntsim.PID, img string) bool { return img == image }
}

// ParentProcessOf targets processes of the named image whose parent does
// NOT run the same image — i.e. the first/management process of a
// multi-process application (the paper's "Apache1").
func ParentProcessOf(image string) TargetSelector {
	return func(k *ntsim.Kernel, pid ntsim.PID, img string) bool {
		if img != image {
			return false
		}
		p := k.Process(pid)
		if p == nil {
			return false
		}
		parent := k.Process(p.Parent)
		return parent == nil || parent.Image != image
	}
}

// ChildProcessOf targets processes of the named image whose parent runs the
// same image — the spawned worker (the paper's "Apache2").
func ChildProcessOf(image string) TargetSelector {
	return func(k *ntsim.Kernel, pid ntsim.PID, img string) bool {
		if img != image {
			return false
		}
		p := k.Process(pid)
		if p == nil {
			return false
		}
		parent := k.Process(p.Parent)
		return parent != nil && parent.Image == image
	}
}

// Event records one injection occurrence for the run trace.
type Event struct {
	PID      ntsim.PID
	Function string
	Param    int
	Before   uint64
	After    uint64
}

// Injector intercepts system calls of target processes, recording function
// activation and applying at most one fault per run.
type Injector struct {
	k      *ntsim.Kernel
	target TargetSelector
	spec   *FaultSpec

	counts    map[string]int
	activated map[string]bool
	injected  bool
	events    []Event

	// tel is the kernel's telemetry collector captured at construction;
	// specStr is the fault spec pre-rendered once so the per-dispatch
	// path never formats. Both stay zero-cost when telemetry is off.
	tel     telemetry.Collector
	specStr string
}

var _ ntsim.SyscallInterceptor = (*Injector)(nil)

// New creates an injector for the given kernel and target. A nil spec makes
// the injector a pure observer (activation scan). When the kernel has a
// telemetry collector installed (install it first), arming is recorded
// as a fault-armed trace event so every later activation and injection
// pairs with exactly one arming.
func New(k *ntsim.Kernel, target TargetSelector, spec *FaultSpec) *Injector {
	if target == nil {
		panic("inject: nil target selector")
	}
	in := &Injector{
		k:         k,
		target:    target,
		spec:      spec,
		counts:    make(map[string]int),
		activated: make(map[string]bool),
		tel:       k.Telemetry(),
	}
	if spec != nil && in.tel.Enabled() {
		in.specStr = spec.String()
		in.tel.Emit(k.Now(), 0, telemetry.KindFaultArmed, in.specStr,
			uint64(spec.Param), uint64(spec.Invocation))
		in.tel.Add(telemetry.CtrFaultArmed, 1)
	}
	return in
}

// BeforeSyscall implements ntsim.SyscallInterceptor.
func (in *Injector) BeforeSyscall(pid ntsim.PID, image, fn string, raw []uint64) {
	if !in.target(in.k, pid, image) {
		return
	}
	in.counts[fn]++
	in.activated[fn] = true
	if in.spec == nil || in.injected {
		return
	}
	s := in.spec
	if fn != s.Function || in.counts[fn] != s.Invocation {
		return
	}
	// The armed fault's target invocation has been reached, whether or
	// not the corruption can land (param may exceed the live arity).
	in.tel.Emit(in.k.Now(), uint32(pid), telemetry.KindFaultActivated, in.specStr,
		uint64(in.counts[fn]), 0)
	in.tel.Add(telemetry.CtrFaultActivated, 1)
	if s.Param < 0 || s.Param >= len(raw) {
		// The catalog over-approximated this function's arity; the
		// fault cannot land. Count it as not injected so the
		// controller can classify the run as non-activated.
		return
	}
	before := raw[s.Param]
	raw[s.Param] = s.Type.Apply(before)
	in.injected = true
	in.events = append(in.events, Event{
		PID: pid, Function: fn, Param: s.Param,
		Before: before, After: raw[s.Param],
	})
	in.tel.Emit(in.k.Now(), uint32(pid), telemetry.KindFaultInjected, in.specStr,
		before, raw[s.Param])
	in.tel.Add(telemetry.CtrFaultInjected, 1)
}

// Injected reports whether the configured fault actually fired.
func (in *Injector) Injected() bool { return in.injected }

// Activated reports whether the target called fn at least once.
func (in *Injector) Activated(fn string) bool { return in.activated[fn] }

// ActivatedFunctions returns the set of functions the target called.
func (in *Injector) ActivatedFunctions() map[string]bool {
	out := make(map[string]bool, len(in.activated))
	for fn := range in.activated {
		out[fn] = true
	}
	return out
}

// ActivatedCount reports how many distinct functions the target called
// (the paper's Table 1 metric).
func (in *Injector) ActivatedCount() int { return len(in.activated) }

// CallCount reports how many times the target called fn.
func (in *Injector) CallCount(fn string) int { return in.counts[fn] }

// Events returns the injection trace (at most one event per run).
func (in *Injector) Events() []Event {
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}
