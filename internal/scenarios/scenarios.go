// Package scenarios pins the cluster failure-mode matrix: every
// combination of cluster size, client routing policy, injected cluster
// scenario and middleware runs once, and the per-cell outcomes render as
// one fixed-width line each. The rendered matrix is deterministic — the
// same bytes at any worker-pool width, on any machine — so a golden file
// (testdata/cluster_matrix.golden) turns the whole cluster layer's
// failure semantics into a single CI diff.
package scenarios

import (
	"fmt"
	"strings"
	"sync"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/middleware"
	"ntdts/internal/workload"
)

// The swept dimensions, in rendering order.
var (
	nodeCounts  = []int{1, 2, 3}
	policies    = []string{"failover", "round-robin", "least-loaded"}
	faults      = []string{"node-crash", "service-crash", "partition"}
	middlewares = []middleware.Spec{
		{Supervision: workload.Standalone},
		{Supervision: workload.MSCS},
		{Supervision: workload.Watchd}, // version unpinned = v3, the matrix's watchd generation
	}
)

// Scenario trigger timing: every fault fires 5 virtual seconds after the
// client starts (mid-workload for the ~19s IIS canned client) and a
// partition heals 15 seconds later, so heal-time recovery is exercised
// inside the run. Node 0 is always the target — it is the MSCS group
// owner, which is what makes cross-node failover visible in the matrix.
const (
	triggerDelaySec  = 5
	partitionHealSec = 15
)

// Cell is one matrix coordinate.
type Cell struct {
	Nodes      int
	Routing    string
	Middleware middleware.Spec
	Fault      string
}

// Cells enumerates the full matrix in rendering order.
func Cells() []Cell {
	var cells []Cell
	for _, n := range nodeCounts {
		for _, p := range policies {
			for _, f := range faults {
				for _, m := range middlewares {
					cells = append(cells, Cell{Nodes: n, Routing: p, Middleware: m, Fault: f})
				}
			}
		}
	}
	return cells
}

// Spec translates the cell's fault name into the scenario pseudo-fault
// the runner injects.
func (c Cell) Spec() inject.FaultSpec {
	switch c.Fault {
	case "node-crash":
		return inject.FaultSpec{Function: core.ClusterNodeCrashFunction,
			Invocation: triggerDelaySec, Type: inject.FlipBits}
	case "service-crash":
		return inject.FaultSpec{Function: core.ClusterServiceCrashFunction,
			Invocation: triggerDelaySec, Type: inject.FlipBits}
	case "partition":
		return inject.FaultSpec{Function: core.ClusterPartitionFunction,
			Param: partitionHealSec, Invocation: triggerDelaySec, Type: inject.FlipBits}
	default:
		panic("unknown scenario fault " + c.Fault)
	}
}

// Row is one executed cell.
type Row struct {
	Cell
	Outcome   core.Outcome
	Completed bool
	Response  float64
	Restarts  int
	Failovers int
	Crashes   int
}

// Run executes one cell: the IIS workload under the cell's middleware on
// the cell's topology, with the scenario fault injected.
func Run(c Cell) (Row, error) {
	def := workload.NewIIS(c.Middleware.Supervision)
	opts := core.DefaultRunnerOptions()
	opts.WatchdVersion = c.Middleware.Version()
	opts.Cluster = core.ClusterConfig{Nodes: c.Nodes, Routing: c.Routing}
	spec := c.Spec()
	res, err := core.NewRunner(def, opts).Run(&spec)
	if err != nil {
		return Row{}, fmt.Errorf("cell %+v: %w", c, err)
	}
	row := Row{Cell: c, Outcome: res.Outcome, Completed: res.Completed,
		Response: res.ResponseSec, Restarts: res.Restarts}
	for _, ns := range res.Nodes {
		row.Failovers += ns.Failovers
		if ns.Crashed {
			row.Crashes++
		}
	}
	return row, nil
}

// String renders the row as one fixed-width matrix line.
func (r Row) String() string {
	return fmt.Sprintf("nodes=%d routing=%-12s middleware=%-6s fault=%-13s outcome=%-22q completed=%-5v response=%6.2fs restarts=%d failovers=%d crashes=%d",
		r.Nodes, r.Routing, r.Middleware.Supervision, r.Fault, r.Outcome.String(),
		r.Completed, r.Response, r.Restarts, r.Failovers, r.Crashes)
}

// Matrix runs every cell on a pool of workers and renders the matrix.
// The rendering order is the Cells order regardless of the pool width,
// so the output is byte-identical at any parallelism.
func Matrix(parallelism int) (string, error) {
	cells := Cells()
	if parallelism < 1 {
		parallelism = 1
	}
	rows := make([]Row, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rows[i], errs[i] = Run(cells[i])
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	var b strings.Builder
	b.WriteString("# Cluster scenario matrix: {nodes} x {routing} x {fault} x {middleware}, IIS workload.\n")
	b.WriteString("# Regenerate with: go test ./internal/scenarios/ -run TestClusterMatrix -update\n")
	for i := range cells {
		if errs[i] != nil {
			return "", errs[i]
		}
		b.WriteString(rows[i].String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
