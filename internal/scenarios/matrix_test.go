package scenarios_test

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"ntdts/internal/scenarios"
)

var update = flag.Bool("update", false, "rewrite the golden cluster matrix from live behaviour")

const goldenPath = "testdata/cluster_matrix.golden"

// TestClusterMatrix pins the failure semantics of the whole cluster
// layer: every {nodes, routing, fault, middleware} cell's outcome must
// match the golden matrix byte for byte.
func TestClusterMatrix(t *testing.T) {
	got, err := scenarios.Matrix(runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Fatalf("cluster matrix drifted from %s (regenerate with -update if the change is intended):\n%s",
			goldenPath, firstDiff(string(want), got))
	}
}

// TestClusterMatrixDeterministic re-renders the matrix at different pool
// widths; any divergence means a cluster run leaked real-world
// nondeterminism into its result.
func TestClusterMatrixDeterministic(t *testing.T) {
	seq, err := scenarios.Matrix(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := scenarios.Matrix(8)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("matrix differs between 1 and 8 workers:\n%s", firstDiff(seq, par))
	}
}

// TestCellsCoverEveryDimension guards the sweep against a silently
// dropped dimension value.
func TestCellsCoverEveryDimension(t *testing.T) {
	cells := scenarios.Cells()
	if len(cells) != 81 {
		t.Fatalf("%d cells, want 81 (3 sizes x 3 policies x 3 faults x 3 middlewares)", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.Routing] = true
		seen[c.Fault] = true
		seen[c.Middleware.String()] = true
	}
	for _, want := range []string{"failover", "round-robin", "least-loaded",
		"node-crash", "service-crash", "partition", "none", "mscs", "watchd"} {
		if !seen[want] {
			t.Fatalf("dimension value %q missing from the sweep", want)
		}
	}
}

// firstDiff renders the first differing line of two renderings.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(w), len(g))
}
