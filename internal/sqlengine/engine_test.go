package sqlengine

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func mustExec(t *testing.T, db *DB, src string) *Result {
	t.Helper()
	r, err := db.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return r
}

func newPartsDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE parts (id INT, name TEXT, qty INT)")
	mustExec(t, db, "INSERT INTO parts VALUES (1, 'bolt', 40)")
	mustExec(t, db, "INSERT INTO parts VALUES (2, 'nut', 12)")
	mustExec(t, db, "INSERT INTO parts VALUES (3, 'washer', 7)")
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newPartsDB(t)
	r := mustExec(t, db, "SELECT * FROM parts")
	if len(r.Rows) != 3 || len(r.Columns) != 3 {
		t.Fatalf("rows=%d cols=%v", len(r.Rows), r.Columns)
	}
	if r.Rows[0][1].Text != "bolt" {
		t.Fatalf("row0 = %v", r.Rows[0])
	}
}

func TestProjection(t *testing.T) {
	db := newPartsDB(t)
	r := mustExec(t, db, "SELECT name, qty FROM parts")
	if len(r.Columns) != 2 || r.Columns[0] != "name" || r.Columns[1] != "qty" {
		t.Fatalf("cols %v", r.Columns)
	}
	if r.Rows[2][0].Text != "washer" || r.Rows[2][1].Int != 7 {
		t.Fatalf("row2 = %v", r.Rows[2])
	}
}

func TestWhereOperators(t *testing.T) {
	db := newPartsDB(t)
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT * FROM parts WHERE qty > 10", 2},
		{"SELECT * FROM parts WHERE qty >= 12", 2},
		{"SELECT * FROM parts WHERE qty < 12", 1},
		{"SELECT * FROM parts WHERE qty <= 12", 2},
		{"SELECT * FROM parts WHERE qty = 40", 1},
		{"SELECT * FROM parts WHERE qty <> 40", 2},
		{"SELECT * FROM parts WHERE name = 'nut'", 1},
		{"SELECT * FROM parts WHERE name <> 'nut'", 2},
		{"SELECT * FROM parts WHERE name > 'bolt'", 2},
	}
	for _, c := range cases {
		if got := mustExec(t, db, c.q); len(got.Rows) != c.want {
			t.Errorf("%q returned %d rows, want %d", c.q, len(got.Rows), c.want)
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "create table T1 (A int, B text)")
	mustExec(t, db, "INSERT into t1 VALUES (5, 'x')")
	r := mustExec(t, db, "SeLeCt a FROM T1 where A = 5")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != 5 {
		t.Fatalf("rows %v", r.Rows)
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE s (v TEXT)")
	mustExec(t, db, "INSERT INTO s VALUES ('it''s')")
	r := mustExec(t, db, "SELECT v FROM s")
	if r.Rows[0][0].Text != "it's" {
		t.Fatalf("got %q", r.Rows[0][0].Text)
	}
}

func TestNegativeNumbers(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE n (v INT)")
	mustExec(t, db, "INSERT INTO n VALUES (-42)")
	r := mustExec(t, db, "SELECT v FROM n WHERE v < 0")
	if len(r.Rows) != 1 || r.Rows[0][0].Int != -42 {
		t.Fatalf("rows %v", r.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := newPartsDB(t)
	for _, q := range []string{
		"",
		"DROP TABLE parts",
		"SELECT * FROM missing",
		"SELECT nope FROM parts",
		"SELECT * FROM parts WHERE nope = 1",
		"SELECT * FROM parts WHERE qty = 'text'",
		"SELECT * FROM parts WHERE name = 5",
		"INSERT INTO parts VALUES (1)",
		"INSERT INTO parts VALUES ('x', 'y', 'z')",
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE parts (id INT)",
		"CREATE TABLE t2 ()",
		"CREATE TABLE t3 (a INT, a INT)",
		"CREATE TABLE t4 (a BLOB)",
		"SELECT * FROM parts garbage",
		"SELECT * FROM parts WHERE qty !! 3",
		"INSERT INTO parts VALUES (1, 'unterminated, 2)",
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) unexpectedly succeeded", q)
		}
	}
}

func TestDumpLoadRoundtrip(t *testing.T) {
	db := newPartsDB(t)
	script := db.Dump()
	db2 := NewDB()
	if err := db2.Load(script); err != nil {
		t.Fatalf("Load: %v\nscript:\n%s", err, script)
	}
	r1 := mustExec(t, db, "SELECT * FROM parts")
	r2 := mustExec(t, db2, "SELECT * FROM parts")
	if FormatResult(r1) != FormatResult(r2) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", FormatResult(r1), FormatResult(r2))
	}
}

func TestFormatResult(t *testing.T) {
	db := newPartsDB(t)
	r := mustExec(t, db, "SELECT name, qty FROM parts WHERE qty > 10")
	got := FormatResult(r)
	want := "name\tqty\nbolt\t40\nnut\t12\n"
	if got != want {
		t.Fatalf("FormatResult:\n%q\nwant\n%q", got, want)
	}
}

// Property: inserting N valid rows then selecting * returns exactly N rows,
// and a partitioning predicate splits them exactly.
func TestPropertyInsertSelectCount(t *testing.T) {
	f := func(vals []int16, pivot int16) bool {
		db := NewDB()
		if _, err := db.Exec("CREATE TABLE t (v INT)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", v)); err != nil {
				return false
			}
		}
		all, err := db.Exec("SELECT * FROM t")
		if err != nil || len(all.Rows) != len(vals) {
			return false
		}
		lo, err := db.Exec(fmt.Sprintf("SELECT * FROM t WHERE v < %d", pivot))
		if err != nil {
			return false
		}
		hi, err := db.Exec(fmt.Sprintf("SELECT * FROM t WHERE v >= %d", pivot))
		if err != nil {
			return false
		}
		return len(lo.Rows)+len(hi.Rows) == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dump/Load is lossless for arbitrary text content, including
// quotes and whitespace-free round-tripping of the script format.
func TestPropertyDumpLoadText(t *testing.T) {
	f := func(raw []byte) bool {
		// Constrain to printable single-line text (the dump format is
		// line-oriented).
		text := strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			if r < 32 || r > 126 {
				return 'x'
			}
			return r
		}, string(raw))
		db := NewDB()
		db.Exec("CREATE TABLE t (v TEXT)")
		if _, err := db.Exec("INSERT INTO t VALUES ('" + strings.ReplaceAll(text, "'", "''") + "')"); err != nil {
			return false
		}
		db2 := NewDB()
		if err := db2.Load(db.Dump()); err != nil {
			return false
		}
		r, err := db2.Exec("SELECT v FROM t")
		if err != nil || len(r.Rows) != 1 {
			return false
		}
		return r.Rows[0][0].Text == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
