package sqlengine

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestUpdate(t *testing.T) {
	db := newPartsDB(t)
	r := mustExec(t, db, "UPDATE parts SET qty = 99 WHERE name = 'nut'")
	if r.Count != 1 {
		t.Fatalf("updated %d rows", r.Count)
	}
	got := mustExec(t, db, "SELECT qty FROM parts WHERE name = 'nut'")
	if got.Rows[0][0].Int != 99 {
		t.Fatalf("qty %v", got.Rows[0][0])
	}
	// Unconditional update hits every row.
	r = mustExec(t, db, "UPDATE parts SET qty = 1")
	if r.Count != 3 {
		t.Fatalf("updated %d rows, want 3", r.Count)
	}
}

func TestUpdateErrors(t *testing.T) {
	db := newPartsDB(t)
	for _, q := range []string{
		"UPDATE missing SET qty = 1",
		"UPDATE parts SET nope = 1",
		"UPDATE parts SET qty = 'text'",
		"UPDATE parts SET name = 5",
		"UPDATE parts SET qty = 1 WHERE nope = 2",
		"UPDATE parts SET qty = 1 WHERE name > 5",
		"UPDATE parts SET",
		"UPDATE parts qty = 1",
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) unexpectedly succeeded", q)
		}
	}
}

func TestDelete(t *testing.T) {
	db := newPartsDB(t)
	r := mustExec(t, db, "DELETE FROM parts WHERE qty < 10")
	if r.Count != 1 {
		t.Fatalf("deleted %d rows", r.Count)
	}
	left := mustExec(t, db, "SELECT * FROM parts")
	if len(left.Rows) != 2 {
		t.Fatalf("%d rows remain", len(left.Rows))
	}
	// Unconditional delete empties the table; schema survives.
	mustExec(t, db, "DELETE FROM parts")
	if n := mustExec(t, db, "SELECT COUNT(*) FROM parts"); n.Rows[0][0].Int != 0 {
		t.Fatalf("count after delete-all: %v", n.Rows[0][0])
	}
	mustExec(t, db, "INSERT INTO parts VALUES (9, 'bracket', 5)")
}

func TestDeleteErrors(t *testing.T) {
	db := newPartsDB(t)
	for _, q := range []string{
		"DELETE parts",
		"DELETE FROM missing",
		"DELETE FROM parts WHERE nope = 1",
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) unexpectedly succeeded", q)
		}
	}
}

func TestCountStar(t *testing.T) {
	db := newPartsDB(t)
	r := mustExec(t, db, "SELECT COUNT(*) FROM parts WHERE qty >= 12")
	if len(r.Rows) != 1 || r.Columns[0] != "count" || r.Rows[0][0].Int != 2 {
		t.Fatalf("count result %+v", r)
	}
}

func TestOrderBy(t *testing.T) {
	db := newPartsDB(t)
	asc := mustExec(t, db, "SELECT name, qty FROM parts ORDER BY qty")
	if asc.Rows[0][1].Int != 7 || asc.Rows[2][1].Int != 40 {
		t.Fatalf("asc order %v", asc.Rows)
	}
	desc := mustExec(t, db, "SELECT name, qty FROM parts ORDER BY qty DESC")
	if desc.Rows[0][1].Int != 40 || desc.Rows[2][1].Int != 7 {
		t.Fatalf("desc order %v", desc.Rows)
	}
	byName := mustExec(t, db, "SELECT name FROM parts ORDER BY name ASC")
	if byName.Rows[0][0].Text != "bolt" || byName.Rows[2][0].Text != "washer" {
		t.Fatalf("name order %v", byName.Rows)
	}
	if _, err := db.Exec("SELECT name FROM parts ORDER BY qty"); err == nil {
		t.Fatal("ORDER BY column outside projection accepted")
	}
}

func TestLimit(t *testing.T) {
	db := newPartsDB(t)
	r := mustExec(t, db, "SELECT name FROM parts ORDER BY name LIMIT 2")
	if len(r.Rows) != 2 || r.Rows[0][0].Text != "bolt" {
		t.Fatalf("limit rows %v", r.Rows)
	}
	if got := mustExec(t, db, "SELECT * FROM parts LIMIT 0"); len(got.Rows) != 0 {
		t.Fatalf("LIMIT 0 rows %v", got.Rows)
	}
	if got := mustExec(t, db, "SELECT * FROM parts LIMIT 99"); len(got.Rows) != 3 {
		t.Fatalf("oversized limit rows %v", got.Rows)
	}
	if _, err := db.Exec("SELECT * FROM parts LIMIT nope"); err == nil {
		t.Fatal("bad LIMIT accepted")
	}
}

// Property: DELETE WHERE p removes exactly the rows SELECT WHERE p finds.
func TestPropertyDeleteMatchesSelect(t *testing.T) {
	f := func(vals []int16, pivot int16) bool {
		db := NewDB()
		db.Exec("CREATE TABLE t (v INT)")
		for _, v := range vals {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", v)); err != nil {
				return false
			}
		}
		match, err := db.Exec(fmt.Sprintf("SELECT COUNT(*) FROM t WHERE v < %d", pivot))
		if err != nil {
			return false
		}
		deleted, err := db.Exec(fmt.Sprintf("DELETE FROM t WHERE v < %d", pivot))
		if err != nil {
			return false
		}
		if int64(deleted.Count) != match.Rows[0][0].Int {
			return false
		}
		rest, err := db.Exec("SELECT COUNT(*) FROM t")
		if err != nil {
			return false
		}
		return rest.Rows[0][0].Int == int64(len(vals)-deleted.Count)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ORDER BY yields a nondecreasing (or nonincreasing) sequence.
func TestPropertyOrderBySorted(t *testing.T) {
	f := func(vals []int16, desc bool) bool {
		db := NewDB()
		db.Exec("CREATE TABLE t (v INT)")
		for _, v := range vals {
			db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", v))
		}
		q := "SELECT v FROM t ORDER BY v"
		if desc {
			q += " DESC"
		}
		r, err := db.Exec(q)
		if err != nil || len(r.Rows) != len(vals) {
			return false
		}
		for i := 1; i < len(r.Rows); i++ {
			a, b := r.Rows[i-1][0].Int, r.Rows[i][0].Int
			if desc && a < b {
				return false
			}
			if !desc && a > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
