package sqlengine

import (
	"fmt"
	"strings"
)

// Table is one relation: a schema plus rows.
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]Value
}

// colIndex resolves a column name, -1 if absent.
func (t *Table) colIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Result is the outcome of executing a statement.
type Result struct {
	Columns []string
	Rows    [][]Value
	Count   int // rows affected for DML
}

// Exec parses and executes one statement.
func (db *DB) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return db.Run(st)
}

// Run executes a parsed statement.
func (db *DB) Run(st Statement) (*Result, error) {
	switch s := st.(type) {
	case CreateTable:
		return db.runCreate(s)
	case Insert:
		return db.runInsert(s)
	case Select:
		return db.runSelect(s)
	case Update:
		return db.runUpdate(s)
	case Delete:
		return db.runDelete(s)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func (db *DB) runCreate(s CreateTable) (*Result, error) {
	if _, exists := db.tables[s.Table]; exists {
		return nil, fmt.Errorf("sql: table %q already exists", s.Table)
	}
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("sql: table %q has no columns", s.Table)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if seen[c.Name] {
			return nil, fmt.Errorf("sql: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	db.tables[s.Table] = &Table{Name: s.Table, Columns: cols}
	return &Result{}, nil
}

func (db *DB) runInsert(s Insert) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", s.Table)
	}
	if len(s.Values) != len(t.Columns) {
		return nil, fmt.Errorf("sql: %d values for %d columns", len(s.Values), len(t.Columns))
	}
	row := make([]Value, len(s.Values))
	for i, v := range s.Values {
		if v.Type != t.Columns[i].Type {
			return nil, fmt.Errorf("sql: column %q wants %v, got %v",
				t.Columns[i].Name, t.Columns[i].Type, v.Type)
		}
		row[i] = v
	}
	t.Rows = append(t.Rows, row)
	return &Result{Count: 1}, nil
}

func (db *DB) runSelect(s Select) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", s.Table)
	}
	// Resolve projection.
	var idx []int
	var names []string
	if s.Columns == nil {
		idx = make([]int, len(t.Columns))
		names = make([]string, len(t.Columns))
		for i, c := range t.Columns {
			idx[i] = i
			names[i] = c.Name
		}
	} else {
		for _, name := range s.Columns {
			i := t.colIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("sql: no column %q in %q", name, s.Table)
			}
			idx = append(idx, i)
			names = append(names, name)
		}
	}
	// Resolve predicate.
	whereIdx := -1
	if s.Where != nil {
		whereIdx = t.colIndex(s.Where.Column)
		if whereIdx < 0 {
			return nil, fmt.Errorf("sql: no column %q in %q", s.Where.Column, s.Table)
		}
		if t.Columns[whereIdx].Type != s.Where.Value.Type {
			return nil, fmt.Errorf("sql: predicate type mismatch on %q", s.Where.Column)
		}
	}
	res := &Result{Columns: names}
	for _, row := range t.Rows {
		if whereIdx >= 0 && !matches(row[whereIdx], s.Where.Op, s.Where.Value) {
			continue
		}
		out := make([]Value, len(idx))
		for j, i := range idx {
			out[j] = row[i]
		}
		res.Rows = append(res.Rows, out)
	}
	res.Count = len(res.Rows)
	if s.CountStar {
		return &Result{
			Columns: []string{"count"},
			Rows:    [][]Value{{IntVal(int64(len(res.Rows)))}},
			Count:   1,
		}, nil
	}
	if err := applyOrderLimit(res, s.OrderBy, s.Desc, s.Limit); err != nil {
		return nil, err
	}
	return res, nil
}

func matches(cell Value, op string, want Value) bool {
	var cmp int
	if cell.Type == TypeInt {
		switch {
		case cell.Int < want.Int:
			cmp = -1
		case cell.Int > want.Int:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(cell.Text, want.Text)
	}
	switch op {
	case "=":
		return cmp == 0
	case "<>":
		return cmp != 0
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	case ">=":
		return cmp >= 0
	default:
		return false
	}
}

// Dump serializes the database as a script of CREATE/INSERT statements —
// the on-disk format the simulated SQL Server loads via ReadFileEx.
func (db *DB) Dump() string {
	var sb strings.Builder
	for _, t := range db.tables {
		sb.WriteString("CREATE TABLE " + t.Name + " (")
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name + " " + c.Type.String())
		}
		sb.WriteString(")\n")
		for _, row := range t.Rows {
			sb.WriteString("INSERT INTO " + t.Name + " VALUES (")
			for i, v := range row {
				if i > 0 {
					sb.WriteString(", ")
				}
				if v.Type == TypeText {
					sb.WriteString("'" + strings.ReplaceAll(v.Text, "'", "''") + "'")
				} else {
					sb.WriteString(v.String())
				}
			}
			sb.WriteString(")\n")
		}
	}
	return sb.String()
}

// Load executes a Dump-format script line by line.
func (db *DB) Load(script string) error {
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if _, err := db.Exec(line); err != nil {
			return err
		}
	}
	return nil
}

// FormatResult renders a result set in the wire format SqlClient checks:
// a header line, then one row per line with tab-separated values.
func FormatResult(r *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, "\t"))
	sb.WriteString("\n")
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteString("\t")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
