// Package sqlengine implements the small relational engine behind the
// simulated SQL Server target: a tokenizer, a recursive-descent parser, a
// row store, and an executor covering CREATE TABLE / INSERT / SELECT with
// projections and WHERE predicates. The paper's SqlClient workload issues
// "an SQL select request based on a single table" (§4); this engine is the
// substrate that serves it.
package sqlengine

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >= <>
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL statement.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isAlpha(c):
		for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string at %d", start)
			}
			if l.src[l.pos] == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.src[start:l.pos], pos: start}, nil
	case c == '(' || c == ')' || c == ',' || c == '*' || c == '=':
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isAlpha(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// tokenize runs the lexer to completion.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
