package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// DML and query extensions beyond the workload's SELECT: UPDATE, DELETE,
// ORDER BY, LIMIT, and COUNT(*) — enough engine for custom workloads to
// exercise richer database behaviour under fault injection.

// Update is UPDATE t SET col = value [WHERE ...].
type Update struct {
	Table  string
	Column string
	Value  Value
	Where  *Predicate
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where *Predicate
}

func (Update) stmt() {}
func (Delete) stmt() {}

// parseUpdate parses after the UPDATE keyword has been peeked.
func (p *parser) parseUpdate() (Statement, error) {
	p.take() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("set"); err != nil {
		return nil, err
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	up := Update{Table: strings.ToLower(name), Column: strings.ToLower(col), Value: v}
	where, err := p.optionalWhere()
	if err != nil {
		return nil, err
	}
	up.Where = where
	return up, nil
}

// parseDelete parses after the DELETE keyword has been peeked.
func (p *parser) parseDelete() (Statement, error) {
	p.take() // DELETE
	if err := p.expectIdent("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := Delete{Table: strings.ToLower(name)}
	where, err := p.optionalWhere()
	if err != nil {
		return nil, err
	}
	del.Where = where
	return del, nil
}

// optionalWhere parses a trailing WHERE clause if present.
func (p *parser) optionalWhere() (*Predicate, error) {
	if !p.at(tokIdent, "where") {
		return nil, nil
	}
	p.take()
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokSymbol {
		return nil, fmt.Errorf("sql: expected comparison at %d", p.peek().pos)
	}
	op := p.take().text
	switch op {
	case "=", "<>", "<", ">", "<=", ">=":
	default:
		return nil, fmt.Errorf("sql: bad operator %q", op)
	}
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	return &Predicate{Column: strings.ToLower(col), Op: op, Value: v}, nil
}

// resolvePredicate validates a predicate against a table, returning the
// column index (-1 when the predicate is nil).
func resolvePredicate(t *Table, w *Predicate) (int, error) {
	if w == nil {
		return -1, nil
	}
	idx := t.colIndex(w.Column)
	if idx < 0 {
		return 0, fmt.Errorf("sql: no column %q in %q", w.Column, t.Name)
	}
	if t.Columns[idx].Type != w.Value.Type {
		return 0, fmt.Errorf("sql: predicate type mismatch on %q", w.Column)
	}
	return idx, nil
}

func (db *DB) runUpdate(s Update) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", s.Table)
	}
	col := t.colIndex(s.Column)
	if col < 0 {
		return nil, fmt.Errorf("sql: no column %q in %q", s.Column, s.Table)
	}
	if t.Columns[col].Type != s.Value.Type {
		return nil, fmt.Errorf("sql: column %q wants %v, got %v",
			s.Column, t.Columns[col].Type, s.Value.Type)
	}
	whereIdx, err := resolvePredicate(t, s.Where)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, row := range t.Rows {
		if whereIdx >= 0 && !matches(row[whereIdx], s.Where.Op, s.Where.Value) {
			continue
		}
		row[col] = s.Value
		n++
	}
	return &Result{Count: n}, nil
}

func (db *DB) runDelete(s Delete) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: no such table %q", s.Table)
	}
	whereIdx, err := resolvePredicate(t, s.Where)
	if err != nil {
		return nil, err
	}
	kept := t.Rows[:0]
	n := 0
	for _, row := range t.Rows {
		if whereIdx >= 0 && !matches(row[whereIdx], s.Where.Op, s.Where.Value) {
			kept = append(kept, row)
			continue
		}
		n++
	}
	t.Rows = kept
	return &Result{Count: n}, nil
}

// applyOrderLimit sorts and truncates a result set in place.
func applyOrderLimit(res *Result, orderBy string, desc bool, limit int) error {
	if orderBy != "" {
		idx := -1
		for i, c := range res.Columns {
			if c == orderBy {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("sql: ORDER BY column %q not in projection", orderBy)
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			a, b := res.Rows[i][idx], res.Rows[j][idx]
			var less bool
			if a.Type == TypeInt {
				less = a.Int < b.Int
			} else {
				less = a.Text < b.Text
			}
			if desc {
				return !less && !valueEq(a, b)
			}
			return less
		})
	}
	if limit >= 0 && limit < len(res.Rows) {
		res.Rows = res.Rows[:limit]
		res.Count = limit
	}
	return nil
}

func valueEq(a, b Value) bool {
	if a.Type == TypeInt {
		return a.Int == b.Int
	}
	return a.Text == b.Text
}
