package sqlengine

import (
	"fmt"
	"strings"
)

// ColType is a column type.
type ColType int

const (
	TypeInt ColType = iota + 1
	TypeText
)

// String names the type in SQL syntax.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeText:
		return "TEXT"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column is a table column definition.
type Column struct {
	Name string
	Type ColType
}

// Value is a typed cell value.
type Value struct {
	Type ColType
	Int  int64
	Text string
}

// String renders a value for the wire protocol.
func (v Value) String() string {
	if v.Type == TypeInt {
		return fmt.Sprintf("%d", v.Int)
	}
	return v.Text
}

// IntVal and TextVal are value constructors.
func IntVal(n int64) Value   { return Value{Type: TypeInt, Int: n} }
func TextVal(s string) Value { return Value{Type: TypeText, Text: s} }

// Statement is the parsed-statement interface.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Table   string
	Columns []Column
}

// Insert is INSERT INTO name VALUES (v, ...).
type Insert struct {
	Table  string
	Values []Value
}

// Select is SELECT cols FROM name [WHERE col op value]
// [ORDER BY col [DESC]] [LIMIT n]. A COUNT(*) projection sets CountStar.
type Select struct {
	Table     string
	Columns   []string // nil means *
	Where     *Predicate
	OrderBy   string
	Desc      bool
	Limit     int // -1 means no limit
	CountStar bool
}

// Predicate is a simple comparison.
type Predicate struct {
	Column string
	Op     string // = <> < > <= >=
	Value  Value
}

func (CreateTable) stmt() {}
func (Insert) stmt()      {}
func (Select) stmt()      {}

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %d", p.peek().pos)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) take() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectIdent(word string) error {
	if !p.at(tokIdent, word) {
		return fmt.Errorf("sql: expected %s at %d", word, p.peek().pos)
	}
	p.take()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.at(tokSymbol, sym) {
		return fmt.Errorf("sql: expected %q at %d", sym, p.peek().pos)
	}
	p.take()
	return nil
}

func (p *parser) ident() (string, error) {
	if p.peek().kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier at %d", p.peek().pos)
	}
	return p.take().text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokIdent, "create"):
		return p.createTable()
	case p.at(tokIdent, "insert"):
		return p.insert()
	case p.at(tokIdent, "select"):
		return p.selectStmt()
	case p.at(tokIdent, "update"):
		return p.parseUpdate()
	case p.at(tokIdent, "delete"):
		return p.parseDelete()
	default:
		return nil, fmt.Errorf("sql: unknown statement at %d", p.peek().pos)
	}
}

func (p *parser) createTable() (Statement, error) {
	p.take() // CREATE
	if err := p.expectIdent("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		var ct ColType
		switch strings.ToUpper(tname) {
		case "INT", "INTEGER":
			ct = TypeInt
		case "TEXT", "VARCHAR", "CHAR":
			ct = TypeText
		default:
			return nil, fmt.Errorf("sql: unknown type %q", tname)
		}
		cols = append(cols, Column{Name: strings.ToLower(cname), Type: ct})
		if p.at(tokSymbol, ",") {
			p.take()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return CreateTable{Table: strings.ToLower(name), Columns: cols}, nil
}

func (p *parser) insert() (Statement, error) {
	p.take() // INSERT
	if err := p.expectIdent("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("values"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var vals []Value
	for {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.at(tokSymbol, ",") {
			p.take()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return Insert{Table: strings.ToLower(name), Values: vals}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.take() // SELECT
	sel := Select{Limit: -1}
	switch {
	case p.at(tokSymbol, "*"):
		p.take()
	case p.at(tokIdent, "count"):
		p.take()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		sel.CountStar = true
	default:
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, strings.ToLower(c))
			if p.at(tokSymbol, ",") {
				p.take()
				continue
			}
			break
		}
	}
	if err := p.expectIdent("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = strings.ToLower(name)
	where, err := p.optionalWhere()
	if err != nil {
		return nil, err
	}
	sel.Where = where
	if p.at(tokIdent, "order") {
		p.take()
		if err := p.expectIdent("by"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = strings.ToLower(col)
		if p.at(tokIdent, "desc") {
			p.take()
			sel.Desc = true
		} else if p.at(tokIdent, "asc") {
			p.take()
		}
	}
	if p.at(tokIdent, "limit") {
		p.take()
		if p.peek().kind != tokNumber {
			return nil, fmt.Errorf("sql: expected LIMIT count at %d", p.peek().pos)
		}
		n := 0
		for _, c := range p.take().text {
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("sql: bad LIMIT")
			}
			n = n*10 + int(c-'0')
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) value() (Value, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.take()
		var n int64
		neg := false
		for i, c := range t.text {
			if i == 0 && c == '-' {
				neg = true
				continue
			}
			n = n*10 + int64(c-'0')
		}
		if neg {
			n = -n
		}
		return IntVal(n), nil
	case tokString:
		p.take()
		return TextVal(t.text), nil
	default:
		return Value{}, fmt.Errorf("sql: expected value at %d", t.pos)
	}
}
