// Package workload implements the DTS workload generator (§3): the
// synthetic client programs (HttpClient, SqlClient) with the paper's retry
// protocol — a 15-second reply timeout, a 15-second wait between attempts,
// and at most three attempts per request — plus the standard workload
// definitions for the Apache1, Apache2, IIS and SQL targets.
//
// Client programs are synthetic DTS tooling (the paper's were Java); they
// talk to the kernel's pipe layer directly rather than through the
// injected KERNEL32 surface, mirroring the fact that the paper injects the
// server program only.
package workload

import (
	"bytes"
	"time"

	"ntdts/internal/httpwire"
	"ntdts/internal/ntsim"
	"ntdts/internal/vclock"
)

// Paper §4: client reply timeout and inter-attempt wait are both 15 s, and
// a request is attempted at most three times.
const (
	ReplyTimeout = 15 * time.Second
	RetryWait    = 15 * time.Second
	MaxAttempts  = 3
)

// clientStartupCPU models the client program's own start-up cost (the
// paper's clients were Java programs on a 100 MHz Pentium).
const clientStartupCPU = 5100 * time.Millisecond

// perRequestCPU models client-side request construction and validation.
const perRequestCPU = 2 * time.Second

// RequestSpec is one client request plus its correctness oracle.
type RequestSpec struct {
	Name string
	// Send writes the request and reads the reply over an open
	// connection, returning the raw reply and whether a complete reply
	// arrived.
	send func(p *ntsim.Process, conn Conn, deadline vclock.Time) (reply []byte, complete bool)
	// Expected is the exact correct reply body.
	Expected []byte
	// PipePath is the server endpoint.
	PipePath string
}

// RequestRecord is the client's verdict on one request.
type RequestRecord struct {
	Name        string
	Attempts    int  // attempts actually made (1..MaxAttempts)
	Retried     bool // more than one attempt was needed
	Success     bool // a correct reply was eventually received
	GotResponse bool // at least one complete (possibly wrong) reply arrived
	Start       vclock.Time
	End         vclock.Time

	// Class and Client identify the issuing virtual client when the
	// workload runs a generated cohort (see Cohort). Canned single-client
	// workloads leave Class empty, which downstream per-class aggregation
	// treats as "no class data".
	Class  string
	Client int
}

// Report is the client program's output, read by the DTS data collector.
type Report struct {
	Requests []RequestRecord
	Started  bool
	Done     bool
	Start    vclock.Time
	End      vclock.Time
}

// AllSucceeded reports whether every request eventually got a correct reply.
func (r *Report) AllSucceeded() bool {
	if !r.Done || len(r.Requests) == 0 {
		return false
	}
	for _, req := range r.Requests {
		if !req.Success {
			return false
		}
	}
	return true
}

// AnyRetried reports whether any request needed a retransmission.
func (r *Report) AnyRetried() bool {
	for _, req := range r.Requests {
		if req.Retried {
			return true
		}
	}
	return false
}

// AnyResponse reports whether any complete reply was seen at all (the
// wrong-reply vs no-reply split of Figure 4's failure outcomes).
func (r *Report) AnyResponse() bool {
	for _, req := range r.Requests {
		if req.GotResponse {
			return true
		}
	}
	return false
}

// clientMain is the shared client skeleton: run each request through the
// paper's attempt/retry protocol.
func clientMain(p *ntsim.Process, reqs []RequestSpec, report *Report) uint32 {
	k := p.Kernel()
	report.Started = true
	report.Start = k.Now()
	p.ChargeTime(clientStartupCPU)
	for _, spec := range reqs {
		rec := RequestRecord{Name: spec.Name, Start: k.Now()}
		runRequest(p, spec, &rec)
		report.Requests = append(report.Requests, rec)
	}
	report.End = k.Now()
	report.Done = true
	return 0
}

// runRequest executes the paper's attempt/retry protocol for one request
// and fills in the record's verdict fields. Shared by the canned clients
// and the cohort clients so both observe faults identically.
func runRequest(p *ntsim.Process, spec RequestSpec, rec *RequestRecord) {
	runRequestOn(p, spec, rec, false)
}

// runRequestOn is runRequest with the client's host topology made
// explicit. The canned client runs on the server host (remote=false), so
// its per-request processing burns that host's CPU — the paper's
// single-client setup. A cohort's virtual clients model the paper's
// remote user population: their processing happens on their own machines,
// so it must advance only their own timeline (a sleep), never stall the
// server host — otherwise N clients' local work would serialize on the
// simulated CPU and saturate the service they are merely observing.
func runRequestOn(p *ntsim.Process, spec RequestSpec, rec *RequestRecord, remote bool) {
	k := p.Kernel()
	for attempt := 1; attempt <= MaxAttempts; attempt++ {
		rec.Attempts = attempt
		deadline := k.Now().Add(ReplyTimeout)
		reply, complete := tryOnce(p, spec, deadline)
		if complete {
			rec.GotResponse = true
			if bytes.Equal(reply, spec.Expected) {
				rec.Success = true
				break
			}
		}
		if attempt < MaxAttempts {
			p.SleepFor(RetryWait)
		}
	}
	rec.Retried = rec.Attempts > 1
	if remote {
		p.SleepFor(perRequestCPU)
	} else {
		p.ChargeTime(perRequestCPU)
	}
	rec.End = k.Now()
}

// tryOnce makes a single attempt: connect (polling until the deadline) and
// exchange one request/reply. Connections come from the kernel's
// registered dialer when one exists (cluster routing), else straight from
// the local pipe namespace.
func tryOnce(p *ntsim.Process, spec RequestSpec, deadline vclock.Time) ([]byte, bool) {
	k := p.Kernel()
	dial := dialerFor(k)
	var conn Conn
	for {
		var errno ntsim.Errno
		if dial != nil {
			conn, errno = dial(p, spec.PipePath)
		} else {
			var pc *ntsim.PipeClient
			pc, errno = k.ConnectPipeClient(spec.PipePath)
			if errno == ntsim.ErrSuccess {
				conn = pc
			}
		}
		if errno == ntsim.ErrSuccess {
			break
		}
		if !k.Now().Before(deadline) {
			return nil, false
		}
		p.SleepFor(250 * time.Millisecond)
	}
	defer conn.CloseClient()
	return spec.send(p, conn, deadline)
}

// CloseClient is exported on the kernel type via a tiny wrapper so client
// code outside ntsim can close its end.

// timedConn adapts a workload Conn to httpwire.Conn with an absolute read
// deadline (the client's socket timeout).
type timedConn struct {
	p        *ntsim.Process
	pc       Conn
	deadline vclock.Time
}

func (c *timedConn) Read(buf []byte) (int, bool) {
	remaining := c.deadline.Sub(c.p.Kernel().Now())
	if remaining <= 0 {
		return 0, false
	}
	n, errno := c.pc.ReadTimeout(c.p, buf, remaining)
	if errno != ntsim.ErrSuccess {
		return 0, false
	}
	return n, true
}

func (c *timedConn) Write(data []byte) bool {
	_, errno := c.pc.Write(data)
	return errno == ntsim.ErrSuccess
}

// httpSend performs one HTTP exchange, returning the body when a complete,
// well-formed 200 response arrives. A non-200 or malformed reply counts as
// complete-but-wrong (reply != expected).
func httpSend(path string) func(*ntsim.Process, Conn, vclock.Time) ([]byte, bool) {
	return func(p *ntsim.Process, pc Conn, deadline vclock.Time) ([]byte, bool) {
		conn := &timedConn{p: p, pc: pc, deadline: deadline}
		if !httpwire.WriteRequest(conn, httpwire.Request{Method: "GET", Path: path}) {
			return nil, false
		}
		resp, ok := httpwire.ReadResponse(conn)
		if !ok {
			return nil, false
		}
		if resp.Status != 200 {
			// A complete reply arrived but it is not the document:
			// report it so the run classifies as wrong-reply failure
			// rather than no-reply.
			return []byte(nil), true
		}
		return resp.Body, true
	}
}

// sqlSend performs one SQL exchange: one query line out, the framed reply
// back.
func sqlSend(query string) func(*ntsim.Process, Conn, vclock.Time) ([]byte, bool) {
	return func(p *ntsim.Process, pc Conn, deadline vclock.Time) ([]byte, bool) {
		if _, errno := pc.Write([]byte(query + "\n")); errno != ntsim.ErrSuccess {
			return nil, false
		}
		var reply []byte
		buf := make([]byte, 4096)
		for {
			remaining := deadline.Sub(p.Kernel().Now())
			if remaining <= 0 {
				return nil, false
			}
			n, errno := pc.ReadTimeout(p, buf, remaining)
			if errno == ntsim.ErrBrokenPipe && len(reply) > 0 {
				// Server disconnected after replying: frame done.
				return reply, sqlReplyComplete(reply)
			}
			if errno != ntsim.ErrSuccess {
				return nil, false
			}
			reply = append(reply, buf[:n]...)
			if sqlReplyComplete(reply) {
				return reply, true
			}
		}
	}
}

// sqlReplyComplete checks the "OK <n>\n<payload>" / "ERR <msg>\n" framing.
func sqlReplyComplete(reply []byte) bool {
	nl := bytes.IndexByte(reply, '\n')
	if nl < 0 {
		return false
	}
	head := string(reply[:nl])
	if len(head) >= 4 && head[:4] == "ERR " {
		return true
	}
	if len(head) > 3 && head[:3] == "OK " {
		n := 0
		for _, c := range head[3:] {
			if c < '0' || c > '9' {
				return false
			}
			n = n*10 + int(c-'0')
		}
		return len(reply) >= nl+1+n
	}
	return false
}
