package workload

import (
	"strings"
	"testing"
	"time"

	"ntdts/internal/httpwire"
	"ntdts/internal/ntsim"
)

// fakeHTTPServer registers an image serving scripted responses on the HTTP
// pipe: behavior "ok" serves the static body; "wrong" serves garbage;
// "silent" accepts and never replies; "late" starts listening only after
// the given delay.
func fakeHTTPServer(k *ntsim.Kernel, behavior string, delay time.Duration) {
	k.RegisterImage("fake.exe", func(p *ntsim.Process) uint32 {
		if delay > 0 {
			p.SleepFor(delay)
		}
		ps, errno := k.CreatePipeServer(`\\.\pipe\http80`)
		if errno != ntsim.ErrSuccess {
			return 1
		}
		for {
			if errno := ps.Listen(p); errno != ntsim.ErrSuccess && errno != ntsim.ErrPipeConnected {
				return 1
			}
			conn := &srvConn{p: p, ps: ps}
			req, ok := httpwire.ReadRequest(conn)
			if ok {
				switch behavior {
				case "ok":
					body := StaticBody()
					if req.Path == "/cgi-bin/info" {
						body = []byte("cgi-body")
					}
					httpwire.WriteResponse(conn, httpwire.Response{Status: 200, Body: body})
				case "wrong":
					httpwire.WriteResponse(conn, httpwire.Response{Status: 200, Body: []byte("garbage")})
				case "silent":
					// Accept the request, never reply.
					p.SleepFor(time.Hour)
				}
			}
			ps.Flush(p)
			ps.Disconnect()
		}
	})
}

type srvConn struct {
	p  *ntsim.Process
	ps *ntsim.PipeServer
}

func (c *srvConn) Read(buf []byte) (int, bool) {
	n, errno := c.ps.Read(c.p, buf)
	return n, errno == ntsim.ErrSuccess
}

func (c *srvConn) Write(data []byte) bool {
	_, errno := c.ps.Write(data)
	return errno == ntsim.ErrSuccess
}

// runClient launches the HTTP client against the fake server and drains the
// simulation.
func runClient(t *testing.T, behavior string, delay time.Duration) *Report {
	t.Helper()
	k := ntsim.NewKernel()
	fakeHTTPServer(k, behavior, delay)
	if _, err := k.Spawn("fake.exe", "fake.exe", 0); err != nil {
		t.Fatal(err)
	}
	report := &Report{}
	reqs := []RequestSpec{
		{Name: "static", PipePath: `\\.\pipe\http80`, send: httpSend("/index.html"), Expected: StaticBody()},
		{Name: "cgi", PipePath: `\\.\pipe\http80`, send: httpSend("/cgi-bin/info"), Expected: []byte("cgi-body")},
	}
	k.RegisterImage("client.exe", func(p *ntsim.Process) uint32 {
		return clientMain(p, reqs, report)
	})
	if _, err := k.Spawn("client.exe", "client.exe", 0); err != nil {
		t.Fatal(err)
	}
	deadline := k.Now().Add(200 * time.Second)
	for !report.Done && k.Now().Before(deadline) {
		if !k.Step() {
			break
		}
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	return report
}

func TestClientSucceedsFirstAttempt(t *testing.T) {
	r := runClient(t, "ok", 0)
	if !r.AllSucceeded() {
		t.Fatalf("report %+v", r)
	}
	if r.AnyRetried() {
		t.Fatal("retries on a healthy server")
	}
	for _, req := range r.Requests {
		if req.Attempts != 1 {
			t.Fatalf("request %s took %d attempts", req.Name, req.Attempts)
		}
	}
}

func TestClientRejectsWrongReply(t *testing.T) {
	r := runClient(t, "wrong", 0)
	if r.AllSucceeded() {
		t.Fatal("wrong replies accepted")
	}
	if !r.AnyResponse() {
		t.Fatal("complete (wrong) replies not recorded as responses")
	}
	for _, req := range r.Requests {
		if req.Attempts != MaxAttempts {
			t.Fatalf("request %s gave up after %d attempts, want %d", req.Name, req.Attempts, MaxAttempts)
		}
		if req.Success {
			t.Fatalf("request %s succeeded on garbage", req.Name)
		}
	}
}

func TestClientTimesOutOnSilentServer(t *testing.T) {
	r := runClient(t, "silent", 0)
	if r.AllSucceeded() || r.AnyResponse() {
		t.Fatalf("silent server produced responses: %+v", r)
	}
	if !r.Done {
		t.Fatal("client never finished")
	}
	// Attempt pacing: each attempt is bounded by the reply timeout and
	// separated by the retry wait (paper §4: 15s + 15s).
	first := r.Requests[0]
	dur := first.End.Sub(first.Start)
	// 3 attempts x 15s timeout + 2 x 15s waits = 75s (+ slack for the
	// per-request processing charge).
	if dur < 70*time.Second || dur > 85*time.Second {
		t.Fatalf("silent-request duration %v, want ~75s", dur)
	}
}

func TestClientRetriesUntilServerUp(t *testing.T) {
	// Server appears 20s in: attempt 1 times out, attempt 2 succeeds —
	// the paper's "client request retry with success" outcome.
	r := runClient(t, "ok", 20*time.Second)
	if !r.AllSucceeded() {
		t.Fatalf("late server not recovered: %+v", r)
	}
	if !r.AnyRetried() {
		t.Fatal("no retries recorded for a late server")
	}
	if r.Requests[0].Attempts < 2 {
		t.Fatalf("first request attempts %d, want >=2", r.Requests[0].Attempts)
	}
}

func TestStaticBodySize(t *testing.T) {
	body := StaticBody()
	if len(body) != 115*1024 {
		t.Fatalf("static body %d bytes, want %d (the paper's 115 kB)", len(body), 115*1024)
	}
	if !strings.HasPrefix(string(body), "<html>") {
		t.Fatal("static body is not HTML")
	}
	// Deterministic.
	if string(StaticBody()) != string(body) {
		t.Fatal("StaticBody not deterministic")
	}
}

func TestSupervisionStrings(t *testing.T) {
	if Standalone.String() != "none" || MSCS.String() != "MSCS" || Watchd.String() != "watchd" {
		t.Fatal("supervision names")
	}
	if Supervision(9).String() != "unknown" {
		t.Fatal("unknown supervision")
	}
}

func TestStandardSet(t *testing.T) {
	defs := StandardSet(MSCS)
	want := []string{"Apache1", "Apache2", "IIS", "SQL"}
	if len(defs) != len(want) {
		t.Fatalf("%d definitions", len(defs))
	}
	for i, d := range defs {
		if d.Name != want[i] {
			t.Errorf("definition %d = %s, want %s", i, d.Name, want[i])
		}
		if d.Supervision != MSCS {
			t.Errorf("definition %s supervision %v", d.Name, d.Supervision)
		}
		if !strings.Contains(d.Service.CmdLine, "-cluster") {
			t.Errorf("definition %s missing -cluster flag: %q", d.Name, d.Service.CmdLine)
		}
	}
}

func TestSQLReplyFraming(t *testing.T) {
	cases := []struct {
		reply    string
		complete bool
	}{
		{"", false},
		{"OK 5\n", false},
		{"OK 5\nabc", false},
		{"OK 5\nabcde", true},
		{"OK 0\n", true},
		{"ERR no such table\n", true},
		{"ERR", false},
		{"BOGUS 5\nabcde", false},
		{"OK x\nabcde", false},
	}
	for _, c := range cases {
		if got := sqlReplyComplete([]byte(c.reply)); got != c.complete {
			t.Errorf("sqlReplyComplete(%q) = %v, want %v", c.reply, got, c.complete)
		}
	}
}

// TestSQLWorkloadEndToEnd drives the SQL definition's own client against
// the real simulated server (the definition wiring itself, not just the
// HTTP skeleton).
func TestSQLWorkloadEndToEnd(t *testing.T) {
	def := NewSQL(Standalone)
	k := ntsim.NewKernel()
	def.Setup(k)
	// Start the server image directly (no SCM in this unit test); give it
	// the plain command line.
	if _, err := k.Spawn(def.Service.Image, def.Service.CmdLine, 0); err != nil {
		t.Fatal(err)
	}
	k.RunFor(3 * time.Second)
	_, report, err := def.SpawnClient(k)
	if err != nil {
		t.Fatal(err)
	}
	deadline := k.Now().Add(150 * time.Second)
	for !report.Done && k.Now().Before(deadline) {
		if !k.Step() {
			break
		}
	}
	if pan := k.Panics(); len(pan) != 0 {
		t.Fatalf("panics: %v", pan)
	}
	if !report.AllSucceeded() {
		t.Fatalf("SQL workload failed: %+v", report.Requests)
	}
	if report.AnyRetried() {
		t.Fatal("healthy SQL server needed retries")
	}
}

// TestSQLCatalogAndCannedClient pins the SQL catalog shape: two request
// kinds for cohort mixes, but the canned client keeps issuing only the
// paper's single select — existing archives stay byte-compatible.
func TestSQLCatalogAndCannedClient(t *testing.T) {
	def := NewSQL(Standalone)
	if len(def.Requests) != 2 {
		t.Fatalf("SQL catalog has %d request kinds, want 2", len(def.Requests))
	}
	for _, name := range []string{"select-orders", "select-small"} {
		if _, ok := def.RequestByName(name); !ok {
			t.Fatalf("SQL catalog is missing %q", name)
		}
	}
	k := ntsim.NewKernel()
	def.Setup(k)
	if _, err := k.Spawn(def.Service.Image, def.Service.CmdLine, 0); err != nil {
		t.Fatal(err)
	}
	k.RunFor(3 * time.Second)
	_, report, err := def.SpawnClient(k)
	if err != nil {
		t.Fatal(err)
	}
	deadline := k.Now().Add(150 * time.Second)
	for !report.Done && k.Now().Before(deadline) {
		if !k.Step() {
			break
		}
	}
	if len(report.Requests) != 1 {
		t.Fatalf("canned SQL client issued %d requests, want exactly the paper's single select", len(report.Requests))
	}
	if !report.AllSucceeded() {
		t.Fatalf("canned select failed: %+v", report.Requests[0])
	}
}

// TestReportAccessorsEmpty pins the zero-value semantics the collector
// relies on.
func TestReportAccessorsEmpty(t *testing.T) {
	var r Report
	if r.AllSucceeded() {
		t.Fatal("empty report succeeded")
	}
	if r.AnyRetried() || r.AnyResponse() {
		t.Fatal("empty report has activity")
	}
	r.Done = true
	if r.AllSucceeded() {
		t.Fatal("done report with no requests succeeded")
	}
}
