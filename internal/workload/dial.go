package workload

import (
	"time"

	"ntdts/internal/ntsim"
)

// Conn is the client's transport handle: the subset of *ntsim.PipeClient
// the request protocols need. The single-host workloads use the pipe
// client directly; a cluster runner registers a dialer whose connections
// route through a virtual network and a routing policy instead.
type Conn interface {
	Read(p *ntsim.Process, buf []byte) (int, ntsim.Errno)
	ReadTimeout(p *ntsim.Process, buf []byte, timeout time.Duration) (int, ntsim.Errno)
	Write(data []byte) (int, ntsim.Errno)
	CloseClient()
}

// DialFunc opens a connection to a service endpoint on behalf of a client
// process. Returning a non-success errno means "not connectable right
// now"; the client's retry protocol polls exactly as it does for
// ntsim.ErrFileNotFound / ErrPipeBusy on the direct path.
type DialFunc func(p *ntsim.Process, path string) (Conn, ntsim.Errno)

// dialerKey names the registered dialer in the kernel's named-object
// registry (the same mechanism the SCM uses for its singleton).
const dialerKey = "workload:dialer"

// RegisterDialer installs dial as the connection factory for every client
// process on kernel k. Clients on kernels with no registered dialer
// connect straight to the local pipe namespace, so single-host runs are
// byte-identical to the pre-cluster engine.
func RegisterDialer(k *ntsim.Kernel, dial DialFunc) {
	k.RegisterNamed(dialerKey, dial)
}

// dialerFor returns the kernel's registered dialer, or nil.
func dialerFor(k *ntsim.Kernel) DialFunc {
	if v, ok := k.LookupNamed(dialerKey); ok {
		if d, ok := v.(DialFunc); ok {
			return d
		}
	}
	return nil
}
