package workload

// Multi-client cohort execution: a generated (or replayed) schedule of
// virtual clients replaces the paper's canned single client. Each virtual
// client is its own simulated process running the same attempt/retry
// protocol as the canned client, so a cohort observes faults through
// exactly the machinery the paper's clients did — there is just more of
// it, shaped like production traffic. Schedules are data (class, client,
// request kind, timing), produced by internal/workloadgen or replayed
// from a workload trace; this file only executes them.

import (
	"fmt"
	"time"

	"ntdts/internal/ntsim"
	"ntdts/internal/vclock"
)

// Step is one scheduled request for one virtual client.
type Step struct {
	// Request names a request kind in the Definition's catalog.
	Request string
	// At is the open-loop arrival offset from the cohort epoch (the
	// virtual instant the cohort was spawned). The client starts the
	// request at epoch+At, or immediately if it is running late — arrival
	// order within a client is preserved, never reshuffled.
	At time.Duration
	// Think is the closed-loop think time: the client sleeps this long
	// after its previous step completes before issuing the request.
	Think time.Duration
}

// ClientSchedule is one virtual client's scripted session.
type ClientSchedule struct {
	// Class names the client's traffic class ("browser", "batch", ...).
	Class string
	// Client numbers the client within its class (0-based).
	Client int
	// Steps are issued strictly in order.
	Steps []Step
}

// Cohort replaces def's canned client with a multi-client cohort running
// the given schedule. Every step's request kind must exist in def's
// catalog. The cohort client reports into one shared Report: records
// append in completion order (deterministic under the virtual clock) and
// carry their class/client tags, Done flips once every client finished.
// The rest of the run lifecycle — outcome classification, middleware,
// injection — is untouched, so campaigns swap clients without touching
// core.
func Cohort(def Definition, scheds []ClientSchedule) (Definition, error) {
	if len(scheds) == 0 {
		return Definition{}, fmt.Errorf("workload: empty cohort schedule")
	}
	for _, cs := range scheds {
		if cs.Class == "" {
			return Definition{}, fmt.Errorf("workload: cohort client %d has no class", cs.Client)
		}
		if len(cs.Steps) == 0 {
			return Definition{}, fmt.Errorf("workload: cohort client %s/%d has no steps", cs.Class, cs.Client)
		}
		for _, st := range cs.Steps {
			if _, ok := def.RequestByName(st.Request); !ok {
				return Definition{}, fmt.Errorf("workload: request kind %q not in %s catalog", st.Request, def.Name)
			}
			if st.At < 0 || st.Think < 0 {
				return Definition{}, fmt.Errorf("workload: negative schedule time for %s/%d", cs.Class, cs.Client)
			}
		}
	}
	out := def
	out.MinRunDeadline = cohortDeadline(scheds)
	out.SpawnClient = func(k *ntsim.Kernel) (*ntsim.Process, *Report, error) {
		report := &Report{}
		epoch := k.Now()
		report.Started = true
		report.Start = epoch
		remaining := len(scheds)
		var first *ntsim.Process
		for _, cs := range scheds {
			cs := cs
			image := fmt.Sprintf("wlclient-%s-%d.exe", cs.Class, cs.Client)
			k.RegisterImage(image, func(p *ntsim.Process) uint32 {
				cohortClientMain(p, def, cs, epoch, report)
				// The kernel runs one process at a time, so the shared
				// countdown needs no lock; the last client to finish
				// seals the report.
				remaining--
				if remaining == 0 {
					report.End = p.Kernel().Now()
					report.Done = true
				}
				return 0
			})
			p, err := k.Spawn(image, image, 0)
			if err != nil {
				return nil, nil, err
			}
			if first == nil {
				first = p
			}
		}
		return first, report, nil
	}
	return out, nil
}

// cohortDeadline sizes the virtual-time budget a cohort run needs: every
// client's startup cost, the schedule's own pacing (think times and the
// latest arrival offset), and each request's worst case through the
// paper's retry protocol — MaxAttempts reply timeouts plus the waits
// between them. The default 150 s run deadline is calibrated for the
// paper's single canned client; a many-client cohort executes serially on
// the simulated CPU and would time out fault-free without this floor.
// The floor is a pure function of the schedule, so every topology (and
// every shard worker rebuilding the definition from the journal header)
// computes the same deadline.
func cohortDeadline(scheds []ClientSchedule) time.Duration {
	worstRequest := perRequestCPU + MaxAttempts*ReplyTimeout + (MaxAttempts-1)*RetryWait
	var budget, latest time.Duration
	for _, cs := range scheds {
		budget += clientStartupCPU
		budget += time.Duration(len(cs.Steps)) * worstRequest
		for _, st := range cs.Steps {
			budget += st.Think
			if st.At > latest {
				latest = st.At
			}
		}
	}
	return budget + latest
}

// cohortClientMain is the virtual-client skeleton: pace through the
// schedule (open-loop earliest-start and/or closed-loop think time),
// issuing each request through the paper's attempt/retry protocol, and
// append each record to the shared cohort report the moment it resolves —
// so a run cut off by the deadline still reports everything that
// completed.
func cohortClientMain(p *ntsim.Process, def Definition, cs ClientSchedule, epoch vclock.Time, report *Report) {
	k := p.Kernel()
	// Remote client: startup happens on the client's own machine, so it
	// advances this client's timeline without stalling the server host
	// (see runRequestOn).
	p.SleepFor(clientStartupCPU)
	for _, st := range cs.Steps {
		if st.Think > 0 {
			p.SleepFor(st.Think)
		}
		if st.At > 0 {
			if wake := epoch.Add(st.At); k.Now().Before(wake) {
				p.SleepFor(wake.Sub(k.Now()))
			}
		}
		spec, _ := def.RequestByName(st.Request)
		rec := RequestRecord{
			Name:   spec.Name,
			Class:  cs.Class,
			Client: cs.Client,
			Start:  k.Now(),
		}
		runRequestOn(p, spec, &rec, true)
		report.Requests = append(report.Requests, rec)
	}
}
