package workload

import (
	"fmt"
	"sync"
	"time"

	"ntdts/internal/apps/apache"
	"ntdts/internal/apps/common"
	"ntdts/internal/apps/iis"
	"ntdts/internal/apps/sqlserver"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/scm"
)

// Supervision names the fault-tolerance configuration of a workload set
// (paper §4: stand-alone service, with MSCS, or with watchd).
type Supervision int

const (
	Standalone Supervision = iota + 1
	MSCS
	Watchd
)

// String names the configuration the way the paper's figures do.
func (s Supervision) String() string {
	switch s {
	case Standalone:
		return "none"
	case MSCS:
		return "MSCS"
	case Watchd:
		return "watchd"
	default:
		return "unknown"
	}
}

// ParseSupervision inverts Supervision.String — the spelling journal
// headers and SetResults record.
func ParseSupervision(s string) (Supervision, error) {
	switch s {
	case "none":
		return Standalone, nil
	case "MSCS":
		return MSCS, nil
	case "watchd":
		return Watchd, nil
	default:
		return 0, fmt.Errorf("unknown supervision %q", s)
	}
}

// StaticBody is the deterministic 115 kB HTML document both web servers
// serve (the paper's first request type).
func StaticBody() []byte {
	return staticBody()
}

// staticBody memoizes the 115 KB document: StaticBody is on the per-run
// hot path (every client carries it as its reply oracle), and its two
// consumers never mutate it — VFS.WriteFile copies, the client only
// bytes.Equal-compares.
var staticBody = sync.OnceValue(func() []byte {
	const target = 115 * 1024
	body := make([]byte, 0, target)
	body = append(body, []byte("<html><head><title>DTS test document</title></head><body>\n")...)
	row := []byte("<tr><td>workload</td><td>dependability test suite</td><td>0123456789</td></tr>\n")
	body = append(body, []byte("<table>\n")...)
	for len(body) < target-len("</table></body></html>")-len(row) {
		body = append(body, row...)
	}
	body = append(body, []byte("</table></body></html>")...)
	return body[:target]
})

// SQLQuery is the SqlClient's single-table select (paper §4).
const SQLQuery = "SELECT customer, total FROM orders WHERE total >= 100"

// SQLQuerySmall is the second catalog query: the complementary
// small-order select. The canned SqlClient never issues it (the paper's
// client sends the one select above); generated cohorts mix it in by
// request name ("select-small").
const SQLQuerySmall = "SELECT id, customer FROM orders WHERE total < 100"

// Definition is everything DTS needs to run one workload: how to install
// the server, which SCM service to start, which process to inject, and how
// to launch the client.
type Definition struct {
	// Name is the workload label used in the paper ("Apache1",
	// "Apache2", "IIS", "SQL").
	Name string
	// Service is the SCM registration for the server program.
	Service scm.Config
	// Target selects the process under injection.
	Target inject.TargetSelector
	// Setup installs images and data files on a fresh kernel.
	Setup func(k *ntsim.Kernel)
	// SpawnClient launches the client program, returning its report.
	SpawnClient func(k *ntsim.Kernel) (*ntsim.Process, *Report, error)
	// Supervision is the fault-tolerance configuration baked into the
	// service command line.
	Supervision Supervision
	// Requests is the workload's request catalog: every request kind the
	// target application serves, with its correctness oracle. The canned
	// client issues them in order; a generated cohort draws on them by
	// name (see Cohort).
	Requests []RequestSpec

	// Cohort is the canonical cohort-spec string this definition's client
	// was generated from ("" for canned clients). It rides the journal
	// header so shard workers and -resume rebuild the identical schedule.
	Cohort string
	// WorkloadTrace is the schedule-trace file this definition's client
	// replays ("" when not trace-driven); like Cohort, it rides the
	// journal header.
	WorkloadTrace string
	// MinRunDeadline is the virtual-time floor a run of this definition
	// needs (0 = no constraint). Cohort sets it from the schedule's
	// offered load; core.NewRunner raises RunDeadline to at least this
	// floor so a healthy many-client run is never timed out by the
	// single-client default.
	MinRunDeadline time.Duration
}

// RequestByName finds a request kind in the definition's catalog.
func (d Definition) RequestByName(name string) (RequestSpec, bool) {
	for _, r := range d.Requests {
		if r.Name == name {
			return r, true
		}
	}
	return RequestSpec{}, false
}

// middlewareFlags renders the service command-line suffix for a
// supervision mode.
func middlewareFlags(s Supervision) string {
	switch s {
	case MSCS:
		return " -cluster"
	case Watchd:
		return " -monitored"
	default:
		return ""
	}
}

// httpRequests builds the two paper requests with per-server CGI oracles.
func httpRequests(cgiBody []byte) []RequestSpec {
	return []RequestSpec{
		{
			Name:     "static-115k",
			PipePath: common.HTTPPipe,
			send:     httpSend("/index.html"),
			Expected: StaticBody(),
		},
		{
			Name:     "cgi-1k",
			PipePath: common.HTTPPipe,
			send:     httpSend("/cgi-bin/info"),
			Expected: cgiBody,
		},
	}
}

// spawnCannedClient builds the default SpawnClient: one client program
// issuing the catalog's requests in order (the paper's workload shape).
func spawnCannedClient(image string, reqs []RequestSpec) func(*ntsim.Kernel) (*ntsim.Process, *Report, error) {
	return func(k *ntsim.Kernel) (*ntsim.Process, *Report, error) {
		report := &Report{}
		k.RegisterImage(image, func(p *ntsim.Process) uint32 {
			return clientMain(p, reqs, report)
		})
		p, err := k.Spawn(image, image, 0)
		return p, report, err
	}
}

// NewApache1 is the Apache management-process workload.
func NewApache1(s Supervision) Definition {
	return newApache("Apache1", s, inject.ParentProcessOf(apache.Image))
}

// NewApache2 is the Apache worker-process workload.
func NewApache2(s Supervision) Definition {
	return newApache("Apache2", s, inject.ChildProcessOf(apache.Image))
}

func newApache(name string, s Supervision, target inject.TargetSelector) Definition {
	reqs := httpRequests(apache.CGIBody())
	return Definition{
		Name:        name,
		Supervision: s,
		Target:      target,
		Service: scm.Config{
			Name:     apache.ServiceName,
			Image:    apache.Image,
			CmdLine:  apache.Image + middlewareFlags(s),
			WaitHint: 30 * time.Second,
		},
		Setup: func(k *ntsim.Kernel) {
			cfg := apache.DefaultConfig()
			apache.Register(k, cfg)
			k.VFS().WriteFile(cfg.DocRoot+`\index.html`, StaticBody())
		},
		Requests:    reqs,
		SpawnClient: spawnCannedClient("httpclient.exe", reqs),
	}
}

// NewIIS is the IIS HTTP workload.
func NewIIS(s Supervision) Definition {
	reqs := httpRequests(iis.CGIBody())
	return Definition{
		Name:        "IIS",
		Supervision: s,
		Target:      inject.ByImage(iis.Image),
		Service: scm.Config{
			Name:     iis.ServiceName,
			Image:    iis.Image,
			CmdLine:  iis.Image + middlewareFlags(s),
			WaitHint: 4 * time.Second,
		},
		Setup: func(k *ntsim.Kernel) {
			cfg := iis.DefaultConfig()
			iis.Register(k, cfg)
			k.VFS().WriteFile(cfg.DocRoot+`\index.html`, StaticBody())
		},
		Requests:    reqs,
		SpawnClient: spawnCannedClient("httpclient.exe", reqs),
	}
}

// NewSQL is the SQL Server workload.
func NewSQL(s Supervision) Definition {
	reqs := []RequestSpec{{
		Name:     "select-orders",
		PipePath: common.SQLPipe,
		send:     sqlSend(SQLQuery),
		Expected: sqlserver.ExpectedReply(SQLQuery),
	}, {
		Name:     "select-small",
		PipePath: common.SQLPipe,
		send:     sqlSend(SQLQuerySmall),
		Expected: sqlserver.ExpectedReply(SQLQuerySmall),
	}}
	return Definition{
		Name:        "SQL",
		Supervision: s,
		Target:      inject.ByImage(sqlserver.Image),
		Service: scm.Config{
			Name:     sqlserver.ServiceName,
			Image:    sqlserver.Image,
			CmdLine:  sqlserver.Image + middlewareFlags(s),
			WaitHint: 25 * time.Second,
		},
		Setup: func(k *ntsim.Kernel) {
			sqlserver.Register(k, sqlserver.DefaultConfig())
		},
		Requests: reqs,
		// The canned SqlClient issues only the paper's single select;
		// the rest of the catalog is for cohort request mixes.
		SpawnClient: spawnCannedClient("sqlclient.exe", reqs[:1]),
	}
}

// StandardSet returns the paper's four workloads for one supervision mode,
// in the order Figure 2 presents them.
func StandardSet(s Supervision) []Definition {
	return []Definition{NewApache1(s), NewApache2(s), NewIIS(s), NewSQL(s)}
}
