package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroClockAtEpoch(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want epoch", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	if got := c.Now(); got != Time(3*time.Second) {
		t.Fatalf("Now() = %v, want 3s", got)
	}
	c.Advance(-time.Second) // negative advances are ignored
	if got := c.Now(); got != Time(3*time.Second) {
		t.Fatalf("Now() after negative advance = %v, want 3s", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	c := New()
	var order []int
	c.ScheduleAfter(2*time.Second, func() { order = append(order, 2) })
	c.ScheduleAfter(1*time.Second, func() { order = append(order, 1) })
	c.ScheduleAfter(3*time.Second, func() { order = append(order, 3) })
	for c.RunNext() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v, want [1 2 3]", order)
	}
	if got := c.Now(); got != Time(3*time.Second) {
		t.Fatalf("clock at %v after run, want 3s", got)
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.ScheduleAfter(time.Second, func() { order = append(order, i) })
	}
	for c.RunNext() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	id := c.ScheduleAfter(time.Second, func() { fired = true })
	c.ScheduleAfter(2*time.Second, func() {})
	c.Cancel(id)
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
	for c.RunNext() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelUnknownIsNoop(t *testing.T) {
	c := New()
	c.Cancel(EventID(999))
	if c.Pending() != 0 {
		t.Fatal("cancel of unknown event changed queue")
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	count := 0
	c.ScheduleAfter(1*time.Second, func() { count++ })
	c.ScheduleAfter(2*time.Second, func() { count++ })
	c.ScheduleAfter(5*time.Second, func() { count++ })
	n := c.RunUntil(Time(3 * time.Second))
	if n != 2 || count != 2 {
		t.Fatalf("RunUntil ran %d events (count %d), want 2", n, count)
	}
	if got := c.Now(); got != Time(3*time.Second) {
		t.Fatalf("clock at %v, want exactly 3s", got)
	}
	// Remaining event still fires afterwards.
	if !c.RunNext() || count != 3 {
		t.Fatalf("remaining event did not fire, count=%d", count)
	}
}

func TestNextAt(t *testing.T) {
	c := New()
	if _, ok := c.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	c.ScheduleAfter(7*time.Second, func() {})
	at, ok := c.NextAt()
	if !ok || at != Time(7*time.Second) {
		t.Fatalf("NextAt = %v,%v; want 7s,true", at, ok)
	}
}

func TestScheduleInPastFiresImmediately(t *testing.T) {
	c := New()
	c.Advance(10 * time.Second)
	fired := false
	c.ScheduleAt(Time(1*time.Second), func() { fired = true })
	c.RunNext()
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if got := c.Now(); got != Time(10*time.Second) {
		t.Fatalf("clock moved backwards to %v", got)
	}
}

func TestEventScheduledDuringEvent(t *testing.T) {
	c := New()
	var order []string
	c.ScheduleAfter(time.Second, func() {
		order = append(order, "outer")
		c.ScheduleAfter(time.Second, func() { order = append(order, "inner") })
	})
	for c.RunNext() {
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("nested scheduling order %v", order)
	}
	if got := c.Now(); got != Time(2*time.Second) {
		t.Fatalf("clock at %v, want 2s", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(2 * time.Second)
	b := a.Add(3 * time.Second)
	if b != Time(5*time.Second) {
		t.Fatalf("Add: %v", b)
	}
	if d := b.Sub(a); d != 3*time.Second {
		t.Fatalf("Sub: %v", d)
	}
	if !a.Before(b) || !b.After(a) || a.After(b) || b.Before(a) {
		t.Fatal("Before/After inconsistent")
	}
	if s := b.Seconds(); s != 5.0 {
		t.Fatalf("Seconds: %v", s)
	}
}

// Property: for any set of non-negative delays, RunNext dispatches events in
// nondecreasing time order and the clock never moves backwards.
func TestPropertyMonotonicDispatch(t *testing.T) {
	f := func(delays []uint16) bool {
		c := New()
		var fireTimes []Time
		for _, d := range delays {
			c.ScheduleAfter(time.Duration(d)*time.Millisecond, func() {
				fireTimes = append(fireTimes, c.Now())
			})
		}
		for c.RunNext() {
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a subset of events fires exactly the complement.
func TestPropertyCancelComplement(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		c := New()
		fired := make(map[int]bool)
		ids := make([]EventID, len(delays))
		for i, d := range delays {
			i := i
			ids[i] = c.ScheduleAfter(time.Duration(d)*time.Millisecond, func() {
				fired[i] = true
			})
		}
		cancelled := make(map[int]bool)
		for i := range delays {
			if i < len(cancelMask) && cancelMask[i] {
				c.Cancel(ids[i])
				cancelled[i] = true
			}
		}
		for c.RunNext() {
		}
		for i := range delays {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
