// Package vclock provides a deterministic virtual clock and timer queue for
// discrete-event simulation. All time in the simulated NT system is virtual:
// the clock only advances when the simulation explicitly advances it, so an
// entire fault-injection campaign that spans hours of simulated time runs in
// milliseconds of wall time and is exactly reproducible.
package vclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant of virtual time, measured as a duration since the
// simulation epoch. The zero Time is the epoch itself.
type Time time.Duration

// String formats the virtual time as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the virtual time as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// event is a scheduled callback in the timer queue.
type event struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	id   EventID
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// eventHeap orders events by (when, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a virtual clock with an ordered queue of future events.
// Clock is not safe for concurrent use; the simulation kernel serializes
// access (exactly one simulated process runs at a time).
type Clock struct {
	now       Time
	queue     eventHeap
	seq       uint64
	nextID    EventID
	cancelled map[EventID]bool

	// free recycles fired event structs. A fault-injection run schedules
	// tens of thousands of timer events (sleeps, timeouts, SCM ticks);
	// recycling them keeps the per-event cost allocation-free after the
	// first few. EventIDs stay monotone — only the structs are reused —
	// so Cancel never aliases a recycled event.
	free []*event
}

// New returns a Clock positioned at the simulation epoch.
func New() *Clock {
	return &Clock{cancelled: make(map[EventID]bool)}
}

// Reset returns the clock to the simulation epoch with an empty queue,
// retaining the event freelist and map capacity for reuse. The sequence
// and ID counters restart from zero so a reset clock schedules events in
// exactly the order a fresh one would — the property kernel pooling needs
// for byte-identical replays.
func (c *Clock) Reset() {
	for _, e := range c.queue {
		c.recycle(e)
	}
	c.queue = c.queue[:0]
	c.now = 0
	c.seq = 0
	c.nextID = 0
	clear(c.cancelled)
}

// recycle clears an event's callback and returns the struct to the freelist.
func (c *Clock) recycle(e *event) {
	e.fn = nil
	c.free = append(c.free, e)
}

// newEvent takes an event struct from the freelist, or allocates one.
func (c *Clock) newEvent() *event {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return &event{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Counters returns the clock's sequence and event-ID counters. Together
// with Now they fully describe an event-free clock, so a prefix snapshot
// can be restored onto a pooled clock with RestoreCounters.
func (c *Clock) Counters() (seq uint64, nextID EventID) { return c.seq, c.nextID }

// RestoreCounters positions an empty clock at a snapshot's time and
// counters so that subsequent scheduling resumes with identical ordering
// and IDs. It panics if events are still queued.
func (c *Clock) RestoreCounters(now Time, seq uint64, nextID EventID) {
	if len(c.queue) != 0 {
		panic("vclock: RestoreCounters on a clock with queued events")
	}
	c.now, c.seq, c.nextID = now, seq, nextID
}

// Advance moves the clock forward by d without running any events.
// It is used by the kernel to charge virtual-time costs to the running
// process. Advancing never goes backwards; a negative d is ignored.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += Time(d)
	}
}

// ScheduleAt registers fn to run when the clock reaches t. If t is in the
// past, the event fires on the next RunNext call. The returned EventID can
// be passed to Cancel.
func (c *Clock) ScheduleAt(t Time, fn func()) EventID {
	if fn == nil {
		panic("vclock: ScheduleAt with nil fn")
	}
	c.seq++
	c.nextID++
	e := c.newEvent()
	e.when, e.seq, e.fn, e.id = t, c.seq, fn, c.nextID
	heap.Push(&c.queue, e)
	return e.id
}

// ScheduleAfter registers fn to run d after the current virtual time.
func (c *Clock) ScheduleAfter(d time.Duration, fn func()) EventID {
	return c.ScheduleAt(c.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or unknown
// event is a no-op.
func (c *Clock) Cancel(id EventID) {
	c.cancelled[id] = true
}

// Pending reports how many live (non-cancelled) events remain queued.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.queue {
		if !c.cancelled[e.id] {
			n++
		}
	}
	return n
}

// NextAt returns the virtual time of the next live event, and false if the
// queue is empty.
func (c *Clock) NextAt() (Time, bool) {
	c.drainCancelled()
	if len(c.queue) == 0 {
		return 0, false
	}
	return c.queue[0].when, true
}

// RunNext pops the earliest live event, advances the clock to its deadline
// (never backwards), and runs it. It reports false if no live events remain.
func (c *Clock) RunNext() bool {
	c.drainCancelled()
	if len(c.queue) == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*event)
	if e.when > c.now {
		c.now = e.when
	}
	fn := e.fn
	c.recycle(e)
	fn()
	return true
}

// RunUntil runs queued events in order until the next event would fire after
// deadline, then advances the clock to exactly deadline. It returns the
// number of events run.
func (c *Clock) RunUntil(deadline Time) int {
	n := 0
	for {
		t, ok := c.NextAt()
		if !ok || t.After(deadline) {
			break
		}
		c.RunNext()
		n++
	}
	if deadline.After(c.now) {
		c.now = deadline
	}
	return n
}

// drainCancelled discards cancelled events from the head of the queue.
func (c *Clock) drainCancelled() {
	for len(c.queue) > 0 && c.cancelled[c.queue[0].id] {
		e := heap.Pop(&c.queue).(*event)
		delete(c.cancelled, e.id)
		c.recycle(e)
	}
}

// GoString aids debugging.
func (c *Clock) GoString() string {
	return fmt.Sprintf("vclock.Clock{now: %s, pending: %d}", c.now, c.Pending())
}
