// availability implements the paper's §5 proposal: use DTS's measured
// failure coverage and recovery times as inputs to an analytical
// availability model, turning "how many nines?" from folklore into a
// testing-based estimate. It runs the Figure 2 campaign for the IIS
// workload under all three configurations and prints the estimated
// availability of each.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/workload"
)

func main() {
	assumptions := avail.DefaultAssumptions()
	fmt.Printf("Assumptions: %.4f activated faults/hour, %s manual repair\n\n",
		assumptions.FaultRatePerHour, assumptions.ManualRepair)

	for _, s := range []workload.Supervision{workload.Standalone, workload.MSCS, workload.Watchd} {
		def := workload.NewIIS(s)
		fmt.Fprintf(os.Stderr, "running IIS/%s campaign...\n", s)
		campaign := core.NewCampaign(core.NewRunner(def, core.RunnerOptions{}))
		set, err := campaign.Run(context.Background())
		if err != nil {
			log.Fatalf("campaign: %v", err)
		}
		est, err := avail.EstimateSet(set, assumptions)
		if err != nil {
			log.Fatalf("estimate: %v", err)
		}
		fmt.Println(est)
	}

	fmt.Println("\nThe middleware's coverage improvement translates directly into")
	fmt.Println("additional nines — the availability-benchmark use the paper proposes.")
}
