// Quickstart: inject a single fault into the IIS workload and observe the
// outcome — the smallest possible DTS experiment.
//
// The fault is the paper's marquee example family: corrupt one parameter
// of one KERNEL32 call's first invocation. Here we flip all bits of
// ReadFile's buffer pointer, which kills the server with an access
// violation mid-request; stand-alone, nobody restarts it, and the client's
// retries exhaust — a failure outcome. The same fault under watchd is
// recovered by a restart.
package main

import (
	"fmt"
	"log"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/workload"
)

func main() {
	fault := inject.FaultSpec{
		Function:   "ReadFile",
		Param:      1, // lpBuffer
		Invocation: 1,
		Type:       inject.FlipBits,
	}

	for _, supervision := range []workload.Supervision{workload.Standalone, workload.Watchd} {
		runner := core.NewRunner(workload.NewIIS(supervision), core.RunnerOptions{})
		res, err := runner.Run(&fault)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Printf("fault %-28s under %-7s -> %s", fault.String(), supervision, res.Outcome)
		if res.ServerCrash {
			fmt.Printf(" (server crashed")
			if res.Restarts > 0 {
				fmt.Printf(", %d restart(s)", res.Restarts)
			}
			fmt.Printf(")")
		}
		if res.Completed {
			fmt.Printf(", client finished in %.1fs", res.ResponseSec)
		}
		fmt.Println()
	}
}
