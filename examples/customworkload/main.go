// customworkload demonstrates the paper's extensibility claim (§5: "The
// DTS architecture has been designed to support ... plugin classes to
// support different fault injection mechanisms, workloads, and data
// collection strategies"): a user-defined server program and client are
// wired into a workload.Definition and campaigned with the standard DTS
// core — no changes to the tool.
//
// The custom target is a small "quote of the day" daemon (RFC 865 flavor):
// it loads its quote file at startup and serves one quote per connection
// over a named pipe. The custom client validates the quote byte-for-byte.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/crt"
	"ntdts/internal/ntsim/win32"
	"ntdts/internal/scm"
	"ntdts/internal/workload"
)

const (
	image     = "qotd.exe"
	service   = "QOTD"
	pipePath  = `\\.\pipe\qotd`
	quotePath = `C:\qotd\quote.txt`
	quote     = "The best way to predict the future is to invent it."
)

// qotdMain is the custom server program: a realistic little NT service.
func qotdMain(p *ntsim.Process) uint32 {
	api := win32.New(p)
	rt := crt.Startup(api)
	defer rt.Shutdown()

	h := api.CreateFileA(quotePath, win32.GenericRead, 0, win32.OpenExisting, 0)
	if h == win32.InvalidHandle {
		return 1
	}
	buf := make([]byte, 512)
	var n uint32
	api.ReadFile(h, buf, uint32(len(buf)), &n)
	api.CloseHandle(h)
	payload := append(buf[:n], '\n')

	scm.ReportRunning(p.Kernel(), service)

	pipe := api.CreateNamedPipeA(pipePath, win32.PipeAccessDuplex, win32.PipeTypeByte, 1)
	for {
		if !api.ConnectNamedPipe(pipe) {
			api.Sleep(500)
			continue
		}
		api.WriteFile(pipe, payload, uint32(len(payload)), &n)
		api.FlushFileBuffers(pipe)
		api.DisconnectNamedPipe(pipe)
	}
}

// definition wires the custom programs into a DTS workload.
func definition(s workload.Supervision) workload.Definition {
	return workload.Definition{
		Name:        "QOTD",
		Supervision: s,
		Target:      inject.ByImage(image),
		Service: scm.Config{
			Name: service, Image: image, CmdLine: image,
			WaitHint: 10 * time.Second,
		},
		Setup: func(k *ntsim.Kernel) {
			k.VFS().WriteFile(quotePath, []byte(quote))
			k.RegisterImage(image, qotdMain)
		},
		SpawnClient: spawnQuoteClient,
	}
}

// spawnQuoteClient is the custom synthetic client with the standard DTS
// retry protocol (3 attempts, 15s apart).
func spawnQuoteClient(k *ntsim.Kernel) (*ntsim.Process, *workload.Report, error) {
	report := &workload.Report{}
	expected := quote + "\n"
	k.RegisterImage("qotdclient.exe", func(p *ntsim.Process) uint32 {
		report.Started = true
		report.Start = k.Now()
		rec := workload.RequestRecord{Name: "quote", Start: k.Now()}
		for attempt := 1; attempt <= workload.MaxAttempts; attempt++ {
			rec.Attempts = attempt
			if got, ok := fetchQuote(p, k); ok {
				rec.GotResponse = true
				if got == expected {
					rec.Success = true
					break
				}
			}
			if attempt < workload.MaxAttempts {
				p.SleepFor(workload.RetryWait)
			}
		}
		rec.Retried = rec.Attempts > 1
		rec.End = k.Now()
		report.Requests = append(report.Requests, rec)
		report.End = k.Now()
		report.Done = true
		return 0
	})
	p, err := k.Spawn("qotdclient.exe", "qotdclient.exe", 0)
	return p, report, err
}

func fetchQuote(p *ntsim.Process, k *ntsim.Kernel) (string, bool) {
	deadline := k.Now().Add(workload.ReplyTimeout)
	var pc *ntsim.PipeClient
	for {
		var errno ntsim.Errno
		pc, errno = k.ConnectPipeClient(pipePath)
		if errno == ntsim.ErrSuccess {
			break
		}
		if !k.Now().Before(deadline) {
			return "", false
		}
		p.SleepFor(250 * time.Millisecond)
	}
	defer pc.CloseClient()
	var out []byte
	buf := make([]byte, 256)
	for {
		remaining := deadline.Sub(k.Now())
		if remaining <= 0 {
			return "", false
		}
		n, errno := pc.ReadTimeout(p, buf, remaining)
		if errno == ntsim.ErrBrokenPipe && len(out) > 0 {
			return string(out), true
		}
		if errno != ntsim.ErrSuccess {
			return "", false
		}
		out = append(out, buf[:n]...)
		if out[len(out)-1] == '\n' {
			return string(out), true
		}
	}
}

func main() {
	for _, s := range []workload.Supervision{workload.Standalone, workload.Watchd} {
		fmt.Fprintf(os.Stderr, "campaigning QOTD/%s...\n", s)
		campaign := core.NewCampaign(core.NewRunner(definition(s), core.RunnerOptions{}))
		set, err := campaign.Run(context.Background())
		if err != nil {
			log.Fatalf("campaign: %v", err)
		}
		d := set.Distribution()
		fmt.Printf("QOTD/%-7s activated=%d injected=%d normal=%.1f%% restart=%.1f%% retry=%.1f%% FAIL=%.1f%%\n",
			s, set.ActivatedFns, d.Total,
			d.Pct["normal success"],
			d.Pct["restart success"]+d.Pct["restart+retry success"],
			d.Pct["retry success"], d.Pct["failure"])
	}
}
