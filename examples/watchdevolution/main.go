// watchdevolution reproduces §4.3: the iterative improvement of watchd
// from Watchd1 to Watchd3, driven by studying the specific faults that
// produced failure outcomes — the paper's core "fault injection as
// debugging feedback" workflow. It renders Figure 5 and then, for each
// version, the concrete coverage holes DTS identified.
package main

import (
	"fmt"
	"log"
	"os"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/report"
)

func main() {
	cfg := experiments.Config{Progress: func(line string) {
		fmt.Fprintln(os.Stderr, line)
	}}
	res, err := experiments.RunFigure5(cfg)
	if err != nil {
		log.Fatalf("figure 5: %v", err)
	}
	fmt.Print(report.Figure5(res), "\n")

	fmt.Println("Coverage holes found per iteration (the paper's §4.3 feedback loop):")
	fmt.Println()
	for _, v := range []watchd.Version{watchd.V1, watchd.V2, watchd.V3} {
		set, ok := res.Find(v, "IIS")
		if !ok {
			continue
		}
		fmt.Print(report.TopFailures(set, 8), "\n")
	}

	// The study step itself: which faults each iteration recovered (or
	// broke), fault by fault.
	for _, wl := range experiments.Figure5Workloads() {
		v1, _ := res.Find(watchd.V1, wl)
		v2, _ := res.Find(watchd.V2, wl)
		v3, _ := res.Find(watchd.V3, wl)
		fmt.Print(report.Transitions(wl+"/Watchd1", wl+"/Watchd2", core.DiffSets(v1, v2), 6), "\n")
		fmt.Print(report.Transitions(wl+"/Watchd2", wl+"/Watchd3", core.DiffSets(v2, v3), 6), "\n")
	}

	fmt.Println("Interpretation:")
	fmt.Println("  Watchd1 loses the service handle when the process dies between")
	fmt.Println("  startService() and getServiceInfo(); Watchd2 merges the two calls,")
	fmt.Println("  recovering most early deaths; Watchd3 validates the handle and")
	fmt.Println("  retries with SCM confirmation, closing the remaining start races.")
}
