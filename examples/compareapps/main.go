// compareapps reproduces §4.2's application comparison: Apache (combined
// Apache1+Apache2, weighted by activated faults) against IIS — the paper's
// Figure 3 outcome distributions, Table 2 common-fault comparison, and
// Figure 4 response times with 95% confidence intervals.
package main

import (
	"fmt"
	"log"
	"os"

	"ntdts/internal/experiments"
	"ntdts/internal/report"
)

func main() {
	cfg := experiments.Config{Progress: func(line string) {
		fmt.Fprintln(os.Stderr, line)
	}}
	exp, err := experiments.RunFigure2(cfg)
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	rows, err := experiments.Figure3(exp)
	if err != nil {
		log.Fatalf("figure 3: %v", err)
	}
	fmt.Print(report.Figure3(rows), "\n")

	t2, err := experiments.Table2(exp)
	if err != nil {
		log.Fatalf("table 2: %v", err)
	}
	fmt.Print(report.Table2(t2), "\n")

	cells, err := experiments.Figure4(exp)
	if err != nil {
		log.Fatalf("figure 4: %v", err)
	}
	fmt.Print(report.Figure4(cells))
}
