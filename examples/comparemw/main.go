// comparemw reproduces the paper's Figure 2 campaign: every workload
// (Apache1, Apache2, IIS, SQL) under every fault-tolerance configuration
// (stand-alone, MSCS, watchd), with the full KERNEL32 fault list injected
// into each, and renders the outcome distributions plus the Table 1
// activation census.
package main

import (
	"fmt"
	"log"
	"os"

	"ntdts/internal/experiments"
	"ntdts/internal/report"
)

func main() {
	cfg := experiments.Config{Progress: func(line string) {
		fmt.Fprintln(os.Stderr, line)
	}}

	table1, err := experiments.RunTable1(cfg)
	if err != nil {
		log.Fatalf("table 1: %v", err)
	}
	fmt.Print(report.Table1(table1), "\n")

	exp, err := experiments.RunFigure2(cfg)
	if err != nil {
		log.Fatalf("figure 2: %v", err)
	}
	fmt.Print(report.Figure2(exp))
	fmt.Print("\n", report.FailureMatrix(exp))
}
