// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4). Each BenchmarkTableN/BenchmarkFigureN runs the corresponding
// campaign and reports the headline numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's results end to end. The Ablation* benchmarks
// cover the design choices called out in DESIGN.md §4 (scheduler cost per
// system call, per-run cost of the injection harness).
package ntdts_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/middleware"
	"ntdts/internal/middleware/watchd"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/win32"
	replaypkg "ntdts/internal/replay"
	"ntdts/internal/shard"
	"ntdts/internal/sqlengine"
	"ntdts/internal/telemetry"
	"ntdts/internal/workload"
	"ntdts/internal/workloadgen"
)

// BenchmarkTable1 regenerates Table 1: the number of activated KERNEL32
// functions per workload and configuration.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(experiments.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for wl, want := range experiments.PaperTable1() {
			for sup, wantN := range want {
				got := res.Counts[wl][sup]
				if got != wantN {
					b.Fatalf("Table1 %s/%s = %d, paper %d", wl, sup, got, wantN)
				}
			}
		}
		b.ReportMetric(float64(res.Counts["IIS"]["none"]), "IIS-activated")
		b.ReportMetric(float64(res.Counts["Apache1"]["none"]), "Apache1-activated")
	}
}

// sharedFigure2 returns the process-wide memoized Figure 2 experiment:
// the six benchmarks that derive tables and figures from the same
// campaign share one execution instead of re-running ~10k simulations
// each (campaigns are deterministic, so the data is identical).
func sharedFigure2(b *testing.B) *core.Experiment {
	b.Helper()
	exp, err := experiments.Cached(experiments.Config{}).Figure2()
	if err != nil {
		b.Fatal(err)
	}
	return exp
}

func sharedFigure5(b *testing.B) *experiments.Figure5Result {
	b.Helper()
	res, err := experiments.Cached(experiments.Config{}).Figure5()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFigure2 regenerates Figure 2: outcome distributions for every
// workload under stand-alone, MSCS and watchd supervision.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp := sharedFigure2(b)
		for _, wl := range []string{"Apache1", "IIS", "SQL"} {
			none, _ := exp.Find(wl, "none")
			wd, _ := exp.Find(wl, "watchd")
			b.ReportMetric(none.FailurePct(), wl+"-none-fail%")
			b.ReportMetric(wd.FailurePct(), wl+"-watchd-fail%")
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: the weighted Apache-vs-IIS
// outcome comparison.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(sharedFigure2(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Supervision == "none" {
				b.ReportMetric(row.ApachePct["failure"], "Apache-fail%")
				b.ReportMetric(row.IISPct["failure"], "IIS-fail%")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2: Apache vs IIS counting only common
// faults.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(sharedFigure2(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Supervision == "none" && r.Program == "Apache1+Apache2" {
				b.ReportMetric(r.FailurePct, "Apache-common-fail%")
				b.ReportMetric(float64(r.Activated), "Apache-common-faults")
			}
			if r.Supervision == "none" && r.Program == "IIS" {
				b.ReportMetric(r.FailurePct, "IIS-common-fail%")
			}
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: response times by outcome with
// 95% confidence intervals.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Figure4(sharedFigure2(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Supervision == "none" && c.Outcome == "normal success" && c.Stats.N > 0 {
				b.ReportMetric(c.Stats.Mean, c.Program+"-normal-sec")
			}
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: the Watchd1/Watchd2/Watchd3
// evolution.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedFigure5(b)
		for _, v := range []watchd.Version{watchd.V1, watchd.V2, watchd.V3} {
			set, ok := res.Find(v, "IIS")
			if !ok {
				b.Fatal("missing IIS set")
			}
			b.ReportMetric(set.FailurePct(), "IIS-"+v.String()+"-fail%")
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §4) -------------------------------------

// BenchmarkAblationSyscallDispatch measures the cost of one system call
// through the cooperative scheduler and interception path — the overhead
// the deterministic-simulation design pays per KERNEL32 call.
func BenchmarkAblationSyscallDispatch(b *testing.B) {
	k := ntsim.NewKernel()
	k.SetInterceptor(inject.New(k, inject.ByImage("bench.exe"), nil))
	done := make(chan struct{})
	k.RegisterImage("bench.exe", func(p *ntsim.Process) uint32 {
		a := win32.New(p)
		for i := 0; i < b.N; i++ {
			a.GetTickCount()
		}
		close(done)
		return 0
	})
	if _, err := k.Spawn("bench.exe", "bench.exe", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for k.Step() {
		select {
		case <-done:
			return
		default:
		}
	}
}

// BenchmarkAblationSingleRun measures one complete fault-injection run —
// the unit of work Figure 1's loops repeat thousands of times.
func BenchmarkAblationSingleRun(b *testing.B) {
	fault := inject.FaultSpec{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits}
	runner := core.NewRunner(workload.NewIIS(workload.Standalone), core.RunnerOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(&fault); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationActivationScan measures the fault-free calibration run
// that feeds the skip rule.
func BenchmarkAblationActivationScan(b *testing.B) {
	runner := core.NewRunner(workload.NewSQL(workload.Standalone), core.RunnerOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runner.ActivationScan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSQLEngine measures the SQL substrate on the workload's
// actual query.
func BenchmarkAblationSQLEngine(b *testing.B) {
	db := sqlengine.NewDB()
	if err := db.Load(sqlengine.NewDB().Dump()); err != nil {
		b.Fatal(err)
	}
	seed := mustSeed(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seed.Exec(workload.SQLQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func mustSeed(b *testing.B) *sqlengine.DB {
	b.Helper()
	db := sqlengine.NewDB()
	if _, err := db.Exec("CREATE TABLE orders (id INT, customer TEXT, total INT)"); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= 48; i++ {
		if _, err := db.Exec("INSERT INTO orders VALUES (1, 'acme', 120)"); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkAvailability regenerates the §5 availability estimates from the
// Figure 2 campaign.
func BenchmarkAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ests, err := experiments.Availability(sharedFigure2(b), avail.DefaultAssumptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ests {
			if e.Workload == "IIS" {
				b.ReportMetric(e.NinesCount, "IIS-"+e.Supervision+"-nines")
			}
		}
	}
}

// BenchmarkAblationCostModel sweeps the I/O cost model and reports the
// fault-free response-time sensitivity (DESIGN.md §4(5): the Figure 4
// magnitudes hang off one tunable table).
func BenchmarkAblationCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scale := range []int{1, 2, 4} {
			runner := core.NewRunner(workload.NewIIS(workload.Standalone), core.RunnerOptions{})
			def := runner.Def
			base := def.Setup
			def.Setup = func(k *ntsim.Kernel) {
				base(k)
				costs := k.Costs()
				costs.IOPerKB *= time.Duration(scale)
				k.SetCosts(costs)
			}
			runner.Def = def
			_, res, err := runner.ActivationScan()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ResponseSec, fmt.Sprintf("io-x%d-sec", scale))
		}
	}
}

// BenchmarkCampaignParallel sweeps the campaign engine's worker count
// over a full Apache1 stand-alone campaign, reporting absolute throughput
// (runs/sec) and speedup relative to the one-worker sweep measured in the
// same process. On a multi-core host the 4-worker rate should be at least
// twice the sequential rate; the results themselves are byte-identical at
// every worker count. Each worker count runs both engines: the default
// snapshot-fork engine (runs sharing a boot prefix resume from a pooled
// kernel fork) and the legacy fresh-boot engine (every run boots its own
// kernel), with speedup-vs-fresh-boot comparing the two at equal worker
// counts — the metric the CI bench-smoke gate pins (>= 2x; the ISSUE
// target is >= 3x locally, 10x on a many-core host).
func BenchmarkCampaignParallel(b *testing.B) {
	campaign := func(workers int, freshBoot bool) *core.SetResult {
		opts := []core.Option{core.WithParallelism(workers)}
		if freshBoot {
			opts = append(opts, core.WithFreshBoot())
		}
		set, err := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			opts...).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return set
	}

	// Sequential snapshot-engine baseline for the worker-scaling speedup
	// metric, timed outside the sub-benchmarks so every worker count
	// compares against the same run.
	start := time.Now()
	base := campaign(1, false)
	baseRate := float64(len(base.Runs)) / time.Since(start).Seconds()

	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > counts[len(counts)-1] {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		for _, engine := range []string{"fresh-boot", "snapshot"} {
			freshBoot := engine == "fresh-boot"
			b.Run(fmt.Sprintf("engine=%s/workers=%d", engine, workers), func(b *testing.B) {
				// Per-worker-count fresh-boot rate, measured in-process so
				// speedup-vs-fresh-boot compares equal topologies.
				fbStart := time.Now()
				fb := campaign(workers, true)
				fbRate := float64(len(fb.Runs)) / time.Since(fbStart).Seconds()
				totalRuns := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					set := campaign(workers, freshBoot)
					totalRuns += len(set.Runs)
				}
				rate := float64(totalRuns) / b.Elapsed().Seconds()
				b.ReportMetric(rate, "runs/sec")
				b.ReportMetric(rate/baseRate, "speedup")
				b.ReportMetric(rate/fbRate, "speedup-vs-fresh-boot")
			})
		}
	}
}

// BenchmarkCampaignTraced pins the telemetry tax: the same Apache1
// stand-alone campaign with per-run recorders collecting the full event
// trace, counters and histograms, compared against an untraced baseline
// measured in the same process. The overhead-ratio metric (traced time /
// untraced time) is what the CI bench-smoke job gates on; on a steady
// machine with -benchtime long enough to average, the ratio stays under
// 1.10 (CI gates at 1.35 because -benchtime=1x single runs are noisy).
func BenchmarkCampaignTraced(b *testing.B) {
	campaign := func(topts telemetry.Options) *core.SetResult {
		c := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone),
				core.RunnerOptions{Telemetry: topts}),
			core.WithParallelism(1))
		set, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return set
	}

	// Warm-up, then the untraced baseline, timed in this process so the
	// ratio compares like against like.
	campaign(telemetry.Options{})
	start := time.Now()
	base := campaign(telemetry.Options{})
	baseSec := time.Since(start).Seconds()
	if base.Telemetry != nil {
		b.Fatal("baseline campaign collected telemetry")
	}

	events := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := campaign(telemetry.Options{Enabled: true})
		if set.Telemetry == nil {
			b.Fatal("traced campaign collected no telemetry")
		}
		if len(set.Runs) != len(base.Runs) {
			b.Fatalf("traced campaign ran %d faults, baseline %d", len(set.Runs), len(base.Runs))
		}
		events = set.Telemetry.Events()
	}
	tracedSec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(tracedSec/baseSec, "overhead-ratio")
	b.ReportMetric(float64(events), "trace-events")
}

// BenchmarkCampaignJournaled pins the supervision tax: the same Apache1
// stand-alone campaign run under the resilient supervisor with a
// crash-safe results journal (one fsync'd JSONL record per run plus
// periodic checkpoints), compared against an unsupervised baseline
// measured in the same process. The overhead-ratio metric (journaled
// time / bare time) is what the kill-resume CI job gates on; the target
// is < 1.10.
func BenchmarkCampaignJournaled(b *testing.B) {
	bare := func() *core.SetResult {
		c := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			core.WithParallelism(1))
		set, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return set
	}
	jpath := filepath.Join(b.TempDir(), "bench.journal")
	journaled := func() *core.SetResult {
		jw, err := journal.Create(jpath, journal.Header{Workload: "Apache1", Supervision: "none"})
		if err != nil {
			b.Fatal(err)
		}
		sup := core.NewSupervisor(core.SupervisorOptions{})
		sup.AttachJournal(jw)
		c := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			core.WithParallelism(1), core.WithSupervision(sup))
		set, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if err := jw.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := jw.Close(); err != nil {
			b.Fatal(err)
		}
		return set
	}

	// The pairs are interleaved — bare, journaled, bare, journaled — so
	// slow drift in machine load (which dwarfs the small ratio being
	// measured over single ~70ms campaigns) cancels instead of biasing
	// one side.
	bare()
	var bareNS, journaledNS int64
	records := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		base := bare()
		t1 := time.Now()
		set := journaled()
		bareNS += int64(t1.Sub(t0))
		journaledNS += int64(time.Since(t1))
		if len(set.Runs) != len(base.Runs) {
			b.Fatalf("journaled campaign ran %d faults, baseline %d", len(set.Runs), len(base.Runs))
		}
		if len(set.Quarantined) != 0 {
			b.Fatalf("%d runs quarantined in a healthy campaign", len(set.Quarantined))
		}
		records = len(set.Runs)
	}
	b.ReportMetric(float64(journaledNS)/float64(bareNS), "overhead-ratio")
	b.ReportMetric(float64(records), "journal-records")
}

// BenchmarkCampaignSharded sweeps the multi-process shard fan-out over a
// full Apache1 stand-alone campaign: each shard count runs the campaign
// through the coordinator (in-process workers speaking the full wire
// protocol, one run-pool slot each) and reports wall-clock relative to
// the 1-shard sweep measured in the same process. On a multi-core host
// 4 shards should finish in well under 0.6x the 1-shard time — the CI
// shard job gates on exactly that metric; on a single-core host the
// ratio only shows the protocol overhead. The merged results stay
// byte-identical at every shard count (the shard tests pin that).
func BenchmarkCampaignSharded(b *testing.B) {
	campaign := func(shards int) *core.SetResult {
		opts := []core.Option{core.WithParallelism(1)}
		if shards > 1 {
			opts = append(opts,
				core.WithShards(shards),
				core.WithShardExecutor(shard.New(shard.Options{})))
		}
		set, err := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			opts...).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return set
	}

	// Warm-up, then the unsharded baseline every shard count compares
	// against, timed in this process.
	campaign(1)
	start := time.Now()
	base := campaign(1)
	baseSec := time.Since(start).Seconds()

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			totalRuns := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set := campaign(shards)
				if len(set.Runs) != len(base.Runs) {
					b.Fatalf("sharded campaign ran %d faults, baseline %d", len(set.Runs), len(base.Runs))
				}
				totalRuns += len(set.Runs)
			}
			sec := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(totalRuns)/b.Elapsed().Seconds(), "runs/sec")
			b.ReportMetric(sec/baseSec, "time-vs-1shard")
		})
	}
}

// BenchmarkAblationSkipModes compares the calibration-informed skip (ours)
// with the paper's one-probe-per-unactivated-function procedure: identical
// outcome data, very different campaign cost.
func BenchmarkAblationSkipModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fast := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			core.WithFaultTypes(inject.ZeroBits))
		fs, err := fast.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		faithful := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			core.WithFaultTypes(inject.ZeroBits),
			core.WithPaperFaithfulSkips())
		ps, err := faithful.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(fs.Runs)), "runs-calibrated")
		b.ReportMetric(float64(len(ps.Runs)), "runs-paper-faithful")
	}
}

// BenchmarkWorkloadGen measures statistical workload generation: sampling
// a 10,000-request mixed cohort schedule and rendering its replay trace.
// Generation must stay a negligible slice of campaign cost — the CI smoke
// gate bounds gen-ms — and the trace byte count tracks the serialization
// overhead a recorded campaign carries.
// BenchmarkClusterCampaign prices the multi-node engine: the same
// mixed fault campaign (kernel faults plus the three cluster scenario
// kinds) on a 3-node IIS/MSCS cluster, against a single-host campaign
// over the kernel faults measured in the same process. Cluster runs
// simulate N+1 kernels on one shared clock and can use neither
// scheduler elision nor the kernel pool (both per-kernel mechanisms),
// so each run costs a multiple of a single-host run; cost-vs-single-node
// is that multiple, and the CI bench-smoke gate bounds it at 3x.
func BenchmarkClusterCampaign(b *testing.B) {
	kernelSpecs := []inject.FaultSpec{
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "WriteFile", Param: 1, Invocation: 1, Type: inject.ZeroBits},
		{Function: "TransactNamedPipe", Param: 2, Invocation: 1, Type: inject.OneBits},
	}
	clusterSpecs := append([]inject.FaultSpec{
		{Function: core.ClusterNodeCrashFunction, Invocation: 5, Type: inject.FlipBits},
		{Function: core.ClusterServiceCrashFunction, Invocation: 5, Type: inject.FlipBits, Node: 1},
		{Function: core.ClusterPartitionFunction, Param: 15, Invocation: 5, Type: inject.FlipBits},
	}, kernelSpecs...)
	campaign := func(cfg core.ClusterConfig, specs []inject.FaultSpec) *core.SetResult {
		opts := core.DefaultRunnerOptions()
		opts.Cluster = cfg
		set, err := core.NewCampaign(
			core.NewRunner(workload.NewIIS(workload.MSCS), opts),
			core.WithSpecs(specs), core.WithParallelism(1)).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return set
	}

	// Single-host baseline: same workload, same kernel faults, default
	// engine (snapshot fork + kernel pool + elision).
	start := time.Now()
	baseRuns := 0
	for time.Since(start) < 200*time.Millisecond {
		baseRuns += len(campaign(core.ClusterConfig{}, kernelSpecs).Runs)
	}
	basePerRun := time.Since(start).Seconds() / float64(baseRuns)

	totalRuns := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		totalRuns += len(campaign(core.ClusterConfig{Nodes: 3}, clusterSpecs).Runs)
	}
	perRun := b.Elapsed().Seconds() / float64(totalRuns)
	b.ReportMetric(1/perRun, "runs/sec")
	b.ReportMetric(perRun/basePerRun, "cost-vs-single-node")
}

func BenchmarkWorkloadGen(b *testing.B) {
	spec, err := workloadgen.Parse("seed=42" +
		";class=browser,clients=12,requests=500,arrival=poisson,rate=2,mix=static-115k:3/cgi-1k:1" +
		";class=batch,clients=4,requests=800,arrival=gamma,rate=1,shape=0.5,mix=cgi-1k:1,mode=closed" +
		";class=probe,clients=2,requests=400,arrival=weibull,rate=4,shape=0.8,mix=static-115k:1")
	if err != nil {
		b.Fatal(err)
	}
	if got := spec.TotalRequests(); got != 10_000 {
		b.Fatalf("cohort sizes %d requests, want 10000", got)
	}
	var traceBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scheds, err := spec.Schedule()
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := workloadgen.WriteTrace(&buf, spec.String(), scheds); err != nil {
			b.Fatal(err)
		}
		traceBytes = buf.Len()
	}
	sec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(sec*1000, "gen-ms")
	b.ReportMetric(float64(spec.TotalRequests())/sec, "requests/sec")
	b.ReportMetric(float64(traceBytes), "trace-bytes")
}

// BenchmarkCampaignFleet prices the work-stealing dispatcher against the
// static -shards partitioning over the same Apache1 stand-alone
// campaign, at 1/2/4 workers, clean and with a deliberate straggler
// (ChaosSlow wedges worker 0 into sleeping before every run). On a
// balanced fleet stealing should cost about what static costs; with a
// straggler the stealing fleet shrinks the slow worker's chunks and
// speculates its tail, so steal-4 must beat static-4 — the CI
// fleet-chaos job gates on that ratio end to end through the CLI.
func BenchmarkCampaignFleet(b *testing.B) {
	campaign := func(mode string, workers int, slow string) *core.SetResult {
		opts := []core.Option{core.WithParallelism(1)}
		switch {
		case mode == "static" && workers > 1:
			opts = append(opts,
				core.WithShards(workers),
				core.WithShardExecutor(shard.New(shard.Options{WorkerParallelism: 1, ChaosSlow: slow})))
		case mode == "steal":
			opts = append(opts,
				core.WithShards(2), // engages the executor; FleetOptions sizes the fleet
				core.WithShardExecutor(shard.NewFleet(shard.FleetOptions{
					Workers: workers, WorkerParallelism: 1, ChaosSlow: slow})))
		}
		set, err := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			opts...).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if mode == "steal" && set.Dispatch != nil && set.Dispatch.Degraded {
			b.Fatal("stealing fleet completed degraded in a clean benchmark")
		}
		return set
	}

	base := campaign("static", 1, "") // warm-up and run-count baseline

	bench := func(name, mode string, workers int, slow string) {
		b.Run(name, func(b *testing.B) {
			totalRuns := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set := campaign(mode, workers, slow)
				if len(set.Runs) != len(base.Runs) {
					b.Fatalf("%s ran %d faults, baseline %d", name, len(set.Runs), len(base.Runs))
				}
				totalRuns += len(set.Runs)
			}
			b.ReportMetric(float64(totalRuns)/b.Elapsed().Seconds(), "runs/sec")
		})
	}

	for _, w := range []int{1, 2, 4} {
		bench(fmt.Sprintf("static/workers=%d", w), "static", w, "")
		bench(fmt.Sprintf("steal/workers=%d", w), "steal", w, "")
	}
	// The straggler pair: worker 0 sleeps 5ms before every run. Static
	// partitioning eats the full delay on a quarter of the campaign;
	// stealing routes work around the slow slot.
	bench("static/workers=4/straggler", "static", 4, "0:5")
	bench("steal/workers=4/straggler", "steal", 4, "0:5")
}

// BenchmarkReplay measures what the divergence oracle buys: a campaign
// journaled under watchd-v2, replayed to watchd-v3, once with elision on
// (the oracle adopts every run the recorded evidence proves unaffected)
// and once with -no-elide semantics (full re-execution — the rerun
// baseline). Both arms produce byte-identical archives (the replay
// equivalence tests pin that); the metric is wall-clock. Reported:
// "speedup-vs-rerun" (rerun time over elided-replay time) and
// "elision-rate" (fraction of the plan never re-executed).
func BenchmarkReplay(b *testing.B) {
	var specs []inject.FaultSpec
	i := 0
	for _, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		if i++; i%9 != 0 {
			continue
		}
		specs = append(specs, inject.FaultSpec{Function: e.Name, Param: 0, Invocation: 1, Type: inject.ZeroBits})
		if len(specs) >= 60 {
			break
		}
	}
	source := middleware.Spec{Supervision: workload.Watchd, WatchdVersion: watchd.V2}
	target := middleware.Spec{Supervision: workload.Watchd, WatchdVersion: watchd.V3}

	opts := core.DefaultRunnerOptions()
	opts.WatchdVersion = source.WatchdVersion
	opts.Telemetry = telemetry.Options{Enabled: true, TraceCap: 256}
	runner := core.NewRunner(workload.NewIIS(source.Supervision), opts)
	h := shard.HeaderFor(runner)
	h.FaultList = "benchlist"
	jpath := filepath.Join(b.TempDir(), "bench.journal")
	jw, err := journal.Create(jpath, h)
	if err != nil {
		b.Fatal(err)
	}
	sup := core.NewSupervisor(core.SupervisorOptions{})
	sup.AttachJournal(jw)
	if _, err := core.NewCampaign(runner, core.WithSpecs(specs), core.WithSupervision(sup),
		core.WithParallelism(1)).Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		b.Fatal(err)
	}

	replayArm := func(noElide bool) (*core.SetResult, replaypkg.Stats) {
		src, err := replaypkg.Load(jpath)
		if err != nil {
			b.Fatal(err)
		}
		c, oracle, err := replaypkg.Build(src, replaypkg.Options{Target: target, Parallelism: 1, NoElide: noElide})
		if err != nil {
			b.Fatal(err)
		}
		set, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		return set, oracle.Stats()
	}

	// Interleave the arms so load drift cancels (the journaled-overhead
	// benchmark's trick).
	replayArm(false)
	var elidedNS, rerunNS int64
	var stats replaypkg.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		elided, st := replayArm(false)
		t1 := time.Now()
		rerun, _ := replayArm(true)
		elidedNS += int64(t1.Sub(t0))
		rerunNS += int64(time.Since(t1))
		if len(elided.Runs) != len(rerun.Runs) {
			b.Fatalf("elided replay ran %d faults, rerun %d", len(elided.Runs), len(rerun.Runs))
		}
		if st.Elided == 0 {
			b.Fatal("oracle elided nothing on a v2->v3 replay")
		}
		stats = st
	}
	b.ReportMetric(float64(rerunNS)/float64(elidedNS), "speedup-vs-rerun")
	b.ReportMetric(stats.Rate(), "elision-rate")
}
