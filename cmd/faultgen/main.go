// Command faultgen generates a DTS fault list file from the KERNEL32
// export catalog: every parameter of every injectable export with the
// paper's three corruption types.
//
// Usage:
//
//	faultgen [-function NAME] [-out faults.lst]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ntdts/internal/config"
	"ntdts/internal/ntsim/win32"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "faultgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("faultgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	function := fs.String("function", "", "restrict to a single function")
	outPath := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var entries []config.CatalogEntry
	for _, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		if *function != "" && e.Name != *function {
			continue
		}
		entries = append(entries, config.CatalogEntry{Name: e.Name, Params: e.Params})
	}
	if len(entries) == 0 {
		return fmt.Errorf("no injectable catalog entries matched")
	}
	specs := config.GenerateFaultList(entries)

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := config.WriteFaultList(out, specs); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "faultgen: %d faults over %d functions\n", len(specs), len(entries))
	return nil
}
