// Command faultgen generates a DTS fault list file from the KERNEL32
// export catalog: every parameter of every injectable export with the
// paper's three corruption types.
//
// Usage:
//
//	faultgen [-function NAME] [-out faults.lst]
package main

import (
	"flag"
	"fmt"
	"os"

	"ntdts/internal/config"
	"ntdts/internal/ntsim/win32"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultgen", flag.ContinueOnError)
	function := fs.String("function", "", "restrict to a single function")
	outPath := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var entries []config.CatalogEntry
	for _, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		if *function != "" && e.Name != *function {
			continue
		}
		entries = append(entries, config.CatalogEntry{Name: e.Name, Params: e.Params})
	}
	if len(entries) == 0 {
		return fmt.Errorf("no injectable catalog entries matched")
	}
	specs := config.GenerateFaultList(entries)

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := config.WriteFaultList(out, specs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "faultgen: %d faults over %d functions\n", len(specs), len(entries))
	return nil
}
