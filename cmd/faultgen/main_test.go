package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntdts/internal/config"
)

func TestGenerateSingleFunction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.lst")
	if err := run([]string{"-function", "CreateProcessA", "-out", path}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	specs, err := config.ParseFaultList(f)
	if err != nil {
		t.Fatal(err)
	}
	// CreateProcessA has 10 parameters * 3 fault types.
	if len(specs) != 30 {
		t.Fatalf("%d specs, want 30", len(specs))
	}
	for _, s := range specs {
		if s.Function != "CreateProcessA" || s.Invocation != 1 {
			t.Fatalf("spec %+v", s)
		}
	}
}

func TestGenerateFullCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "all.lst")
	if err := run([]string{"-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// 551 injectable functions, at least one fault each, plus header.
	if lines < 552 {
		t.Fatalf("%d lines, want > 552", lines)
	}
}

func TestGenerateUnknownFunction(t *testing.T) {
	if err := run([]string{"-function", "NotARealExport"}); err == nil {
		t.Fatal("unknown function accepted")
	}
}
