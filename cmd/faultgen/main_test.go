package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntdts/internal/config"
)

// runCapture invokes run with captured stdout/stderr.
func runCapture(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var ob, eb bytes.Buffer
	err = run(args, &ob, &eb)
	return ob.String(), eb.String(), err
}

func TestGenerateSingleFunction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.lst")
	_, stderr, err := runCapture(t, "-function", "CreateProcessA", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "30 faults over 1 functions") {
		t.Fatalf("summary line missing:\n%s", stderr)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	specs, err := config.ParseFaultList(f)
	if err != nil {
		t.Fatal(err)
	}
	// CreateProcessA has 10 parameters * 3 fault types.
	if len(specs) != 30 {
		t.Fatalf("%d specs, want 30", len(specs))
	}
	for _, s := range specs {
		if s.Function != "CreateProcessA" || s.Invocation != 1 {
			t.Fatalf("spec %+v", s)
		}
	}
}

func TestGenerateFullCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "all.lst")
	if _, _, err := runCapture(t, "-out", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// 551 injectable functions, at least one fault each, plus header.
	if lines < 552 {
		t.Fatalf("%d lines, want > 552", lines)
	}
}

// TestGenerateToStdout: without -out the list goes to stdout and the
// summary stays on stderr, so `faultgen > faults.lst` produces a clean
// parseable file.
func TestGenerateToStdout(t *testing.T) {
	stdout, stderr, err := runCapture(t, "-function", "ReadFile")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := config.ParseFaultList(strings.NewReader(stdout))
	if err != nil {
		t.Fatalf("stdout is not a parseable fault list: %v\n%s", err, stdout)
	}
	// ReadFile has 5 parameters * 3 fault types.
	if len(specs) != 15 {
		t.Fatalf("%d specs, want 15", len(specs))
	}
	if strings.Contains(stdout, "faultgen:") {
		t.Fatal("summary line leaked onto stdout")
	}
	if !strings.Contains(stderr, "15 faults over 1 functions") {
		t.Fatalf("summary missing from stderr:\n%s", stderr)
	}
}

// TestGenerateOutputFormat: every emitted line is either a comment or a
// four-field spec whose type is one of the paper's three corruptions.
func TestGenerateOutputFormat(t *testing.T) {
	stdout, _, err := runCapture(t, "-function", "WriteFile")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(stdout, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Fatalf("line %q has %d fields, want 4", line, len(fields))
		}
		switch fields[3] {
		case "zero", "ones", "flip":
		default:
			t.Fatalf("line %q has unknown fault type %q", line, fields[3])
		}
	}
}

func TestGenerateUnknownFunction(t *testing.T) {
	if _, _, err := runCapture(t, "-function", "NotARealExport"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

// TestGenerateParamlessFunction: zero-parameter exports are not
// injectable, so selecting one is an error rather than an empty file.
func TestGenerateParamlessFunction(t *testing.T) {
	_, _, err := runCapture(t, "-function", "GetLastError")
	if err == nil || !strings.Contains(err.Error(), "no injectable") {
		t.Fatalf("param-less function returned %v, want no-entries error", err)
	}
}

func TestGenerateBadOutPath(t *testing.T) {
	_, _, err := runCapture(t, "-out", filepath.Join(t.TempDir(), "no", "such", "dir", "f.lst"))
	if err == nil {
		t.Fatal("unwritable -out accepted")
	}
}

// TestGenerateBadFlag: flag errors surface as errors (with usage on the
// supplied stderr), not os.Exit.
func TestGenerateBadFlag(t *testing.T) {
	_, stderr, err := runCapture(t, "-nonsense")
	if err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr, "-function") {
		t.Fatalf("usage not written to stderr:\n%s", stderr)
	}
}
