// Command dtsreport renders a DTS results archive as the paper's tables
// and figures.
//
// Usage:
//
//	dtsreport -in results.json [-artifact auto|table1|figure2|figure3|table2|figure4|figure5|failures]
//	dtsreport -trace trace.jsonl
//	dtsreport -journal campaign.journal
//
// The default artifact ("auto") renders whatever the archive holds; the
// derived artifacts (figure3, table2, figure4) require a figure2 archive.
// With -trace, dtsreport ingests a telemetry trace exported by
// dts -trace-out and prints a summary: events by kind, the busiest API
// functions, fault lifecycle counts and the virtual-time span. With
// -journal, dtsreport replays a campaign journal and summarizes its
// progress — including whether the tail is torn and how to resume.
//
// Unreadable or corrupt inputs exit 2 with a one-line diagnosis, so
// automation can tell "bad input file" from "bad invocation" (1).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/journal"
	"ntdts/internal/report"
	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
)

// exitCorruptInput distinguishes a bad input file from a bad invocation.
const exitCorruptInput = 2

// corruptInput marks an input file that could not be read or parsed.
type corruptInput struct{ err error }

func (e *corruptInput) Error() string { return e.err.Error() }
func (e *corruptInput) Unwrap() error { return e.err }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dtsreport:", err)
		var ci *corruptInput
		if errors.As(err, &ci) {
			os.Exit(exitCorruptInput)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtsreport", flag.ContinueOnError)
	inPath := fs.String("in", "", "results archive to render")
	artifact := fs.String("artifact", "auto", "artifact to render")
	tracePath := fs.String("trace", "", "telemetry trace (JSONL from dts -trace-out) to summarize")
	journalPath := fs.String("journal", "", "campaign journal (from dts -journal) to summarize")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath != "" {
		return summarizeTrace(*tracePath, os.Stdout)
	}
	if *journalPath != "" {
		return summarizeJournal(*journalPath, os.Stdout)
	}
	if *inPath == "" {
		return fmt.Errorf("one of -in, -trace or -journal is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return &corruptInput{fmt.Errorf("unreadable archive: %w", err)}
	}
	defer f.Close()
	archive, err := experiments.LoadArchive(f)
	if err != nil {
		return &corruptInput{fmt.Errorf("corrupt archive %s: %w", *inPath, err)}
	}

	name := *artifact
	if name == "auto" {
		name = archive.Kind
	}
	switch name {
	case "table1":
		if archive.Table1 == nil {
			return fmt.Errorf("archive holds %q, not table1 data", archive.Kind)
		}
		fmt.Print(report.Table1(archive.Table1))
	case "set":
		if archive.Set == nil {
			return fmt.Errorf("archive holds %q, not a single set", archive.Kind)
		}
		d := archive.Set.Distribution()
		fmt.Printf("%s/%s: %d injected faults, %.1f%% failures\n",
			archive.Set.Workload, archive.Set.Supervision, d.Total, archive.Set.FailurePct())
		if archive.Set.Partial {
			fmt.Printf("PARTIAL results: the campaign was stopped before completing its plan\n")
		}
		fmt.Print(report.TopFailures(archive.Set, 50))
		if perClass := report.PerClass(archive.Set, avail.EstimateClasses(archive.Set, avail.DefaultAssumptions())); perClass != "" {
			fmt.Print("\n", perClass)
		}
		if clusterView := report.Cluster(archive.Set); clusterView != "" {
			fmt.Print("\n", clusterView)
		}
		if len(archive.Set.Quarantined) != 0 {
			fmt.Print("\n", report.Quarantine(archive.Set.Quarantined))
		}
	case "figure2":
		if archive.Experiment == nil {
			return fmt.Errorf("archive holds %q, not figure2 data", archive.Kind)
		}
		fmt.Print(report.Figure2(archive.Experiment))
		fmt.Print("\n", report.FailureMatrix(archive.Experiment))
	case "figure3":
		rows, err := needFigure2(archive, experiments.Figure3)
		if err != nil {
			return err
		}
		fmt.Print(report.Figure3(rows))
	case "table2":
		rows, err := needFigure2(archive, experiments.Table2)
		if err != nil {
			return err
		}
		fmt.Print(report.Table2(rows))
	case "figure4":
		cells, err := needFigure2(archive, experiments.Figure4)
		if err != nil {
			return err
		}
		fmt.Print(report.Figure4(cells))
	case "figure5":
		if archive.Figure5 == nil {
			return fmt.Errorf("archive holds %q, not figure5 data", archive.Kind)
		}
		fmt.Print(report.Figure5(archive.Figure5))
	case "availability":
		if archive.Experiment == nil {
			return fmt.Errorf("artifact availability needs a figure2 archive")
		}
		ests, err := experiments.Availability(archive.Experiment, avail.DefaultAssumptions())
		if err != nil {
			return err
		}
		fmt.Print(report.Availability(ests))
	case "failures":
		if archive.Experiment == nil {
			return fmt.Errorf("artifact failures needs a figure2 archive")
		}
		for _, set := range archive.Experiment.Sets {
			fmt.Print(report.TopFailures(set, 10), "\n")
		}
	default:
		return fmt.Errorf("unknown artifact %q", name)
	}
	return nil
}

// summarizeTrace ingests a JSONL telemetry trace and prints the §4.3-style
// post-mortem view: how many runs the trace covers, what the simulated
// system was doing (events by kind, busiest API functions) and how far the
// fault lifecycle got (armed → activated → injected).
func summarizeTrace(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return &corruptInput{fmt.Errorf("unreadable trace: %w", err)}
	}
	defer f.Close()
	lines, err := telemetry.ReadJSONL(f)
	if err != nil {
		return &corruptInput{fmt.Errorf("corrupt trace %s: %w", path, err)}
	}
	if len(lines) == 0 {
		fmt.Fprintln(out, "trace is empty")
		return nil
	}

	runs := make(map[int]bool)
	kinds := make(map[string]int)
	syscalls := make(map[string]int)
	var span vclock.Time
	for _, l := range lines {
		runs[l.Run] = true
		kinds[l.Event.Kind.String()]++
		if l.Event.Kind == telemetry.KindSyscall {
			syscalls[l.Event.Name]++
		}
		if l.Event.At > span {
			span = l.Event.At
		}
	}

	fmt.Fprintf(out, "trace: %d events across %d runs, virtual span %s\n",
		len(lines), len(runs), span)
	fmt.Fprintln(out, "events by kind:")
	for _, k := range sortedByCount(kinds) {
		fmt.Fprintf(out, "  %-18s %d\n", k, kinds[k])
	}
	if len(syscalls) > 0 {
		fmt.Fprintln(out, "busiest API functions:")
		top := sortedByCount(syscalls)
		if len(top) > 10 {
			top = top[:10]
		}
		for _, fn := range top {
			fmt.Fprintf(out, "  %-18s %d\n", fn, syscalls[fn])
		}
	}
	fmt.Fprintf(out, "fault lifecycle: %d armed, %d activated, %d injected\n",
		kinds[telemetry.KindFaultArmed.String()],
		kinds[telemetry.KindFaultActivated.String()],
		kinds[telemetry.KindFaultInjected.String()])
	return nil
}

// summarizeJournal replays a campaign journal and reports how far the
// campaign got — the quick triage view for a crashed or interrupted run.
func summarizeJournal(path string, out io.Writer) error {
	rep, err := journal.Replay(path)
	if err != nil {
		return &corruptInput{fmt.Errorf("corrupt journal: %w", err)}
	}
	h := rep.Header
	fmt.Fprintf(out, "journal: %s/%s, %d runs recorded, %d quarantined\n",
		h.Workload, h.Supervision, rep.Records, len(rep.Quarantined))
	if rep.Plan != nil {
		fmt.Fprintf(out, "plan: %d jobs (%d remaining)\n",
			len(rep.Plan.Jobs), len(rep.Plan.Jobs)-rep.Records)
	}
	if rep.Torn {
		fmt.Fprintln(out, "torn final record (process died mid-write); a resume discards it")
	}
	if len(rep.Dispatch) > 0 {
		// The fleet provenance trail: how the work-stealing dispatcher
		// moved chunks around, and whether the campaign only finished
		// by falling back to in-process execution.
		counts := map[string]int{}
		degraded := false
		for _, ev := range rep.Dispatch {
			counts[ev.Event]++
			if ev.Event == "degraded" {
				degraded = true
			}
		}
		fmt.Fprintf(out, "fleet dispatch: %d chunks assigned, %d redispatched, %d speculated, %d drained in-process, %d worker slots exhausted\n",
			counts["assign"], counts["redispatch"], counts["speculate"], counts["local"], counts["exhausted"])
		if degraded {
			fmt.Fprintln(out, "fleet DEGRADED: the campaign completed in-process after worker budgets were exhausted (results are still complete)")
		}
	}
	fmt.Fprintf(out, "resume with:\n  dts -resume %s\n", path)
	return nil
}

// sortedByCount orders map keys by descending count, name ascending on
// ties, so the summary is deterministic.
func sortedByCount(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// needFigure2 adapts the derived-artifact constructors.
func needFigure2[T any](a *experiments.Archive, build func(*core.Experiment) (T, error)) (T, error) {
	var zero T
	if a.Experiment == nil {
		return zero, fmt.Errorf("this artifact derives from figure2 data; archive holds %q", a.Kind)
	}
	return build(a.Experiment)
}
