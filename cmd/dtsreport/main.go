// Command dtsreport renders a DTS results archive as the paper's tables
// and figures.
//
// Usage:
//
//	dtsreport -in results.json [-artifact auto|table1|figure2|figure3|table2|figure4|figure5|failures]
//	dtsreport -trace trace.jsonl
//	dtsreport -journal campaign.journal
//	dtsreport -diff a.json b.json
//	dtsreport -fitness -in results.json [-weights avail=1,recovery=0.25,quarantine=1]
//	dtsreport -anomalies -in results.json [-mad 5]
//
// The default artifact ("auto") renders whatever the archive holds; the
// derived artifacts (figure3, table2, figure4) require a figure2 archive.
// With -trace, dtsreport ingests a telemetry trace exported by
// dts -trace-out and prints a summary: events by kind, the busiest API
// functions, fault lifecycle counts and the virtual-time span. With
// -journal, dtsreport replays a campaign journal and summarizes its
// progress — including whether the tail is torn and how to resume.
//
// -diff compares two single-set archives fault by fault over their
// common injected faults and renders the failure-matrix delta, including
// any success/failure outcome flips. -fitness scores each set in an
// archive as one weighted scalar; -anomalies flags injected runs whose
// recovery time falls outside k median absolute deviations.
//
// All loading goes through internal/analysis — dtsreport holds no
// artifact parsers of its own. Unreadable or corrupt inputs exit 2 with
// a one-line diagnosis, so automation can tell "bad input file" from
// "bad invocation" (1).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ntdts/internal/analysis"
	"ntdts/internal/avail"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/report"
)

// exitCorruptInput distinguishes a bad input file from a bad invocation.
const exitCorruptInput = 2

// corruptInput marks an input file that could not be read or parsed.
type corruptInput struct{ err error }

func (e *corruptInput) Error() string { return e.err.Error() }
func (e *corruptInput) Unwrap() error { return e.err }

// classify wraps the analysis layer's corruption marker in the exit-code
// carrier; other errors pass through.
func classify(err error) error {
	if err != nil && errors.Is(err, analysis.ErrCorrupt) {
		return &corruptInput{err}
	}
	return err
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dtsreport:", err)
		var ci *corruptInput
		if errors.As(err, &ci) {
			os.Exit(exitCorruptInput)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dtsreport", flag.ContinueOnError)
	inPath := fs.String("in", "", "results archive to render")
	artifact := fs.String("artifact", "auto", "artifact to render")
	tracePath := fs.String("trace", "", "telemetry trace (JSONL from dts -trace-out) to summarize")
	journalPath := fs.String("journal", "", "campaign journal (from dts -journal) to summarize")
	diffMode := fs.Bool("diff", false, "diff two single-set archives (paths as positional args)")
	fitnessMode := fs.Bool("fitness", false, "score each set in -in as one weighted scalar")
	weightsSpec := fs.String("weights", "", "fitness weights, e.g. avail=1,recovery=0.25,quarantine=1")
	anomalyMode := fs.Bool("anomalies", false, "flag recovery-time outliers in -in")
	madK := fs.Float64("mad", 5, "outlier threshold in median absolute deviations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diffMode {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two archive paths")
		}
		return diffArchives(fs.Arg(0), fs.Arg(1), os.Stdout)
	}
	if *tracePath != "" {
		return summarizeTrace(*tracePath, os.Stdout)
	}
	if *journalPath != "" {
		return summarizeJournal(*journalPath, os.Stdout)
	}
	if *inPath == "" {
		return fmt.Errorf("one of -in, -trace, -journal or -diff is required")
	}
	q, err := analysis.OpenArchive(*inPath)
	if err != nil {
		return classify(err)
	}
	if *fitnessMode {
		return renderFitness(q, *weightsSpec, os.Stdout)
	}
	if *anomalyMode {
		return renderAnomalies(q, *madK, os.Stdout)
	}
	archive := q.Archive

	name := *artifact
	if name == "auto" {
		name = archive.Kind
	}
	switch name {
	case "table1":
		if archive.Table1 == nil {
			return fmt.Errorf("archive holds %q, not table1 data", archive.Kind)
		}
		fmt.Print(report.Table1(archive.Table1))
	case "set":
		set, err := q.Set()
		if err != nil {
			return err
		}
		d := set.Distribution()
		fmt.Printf("%s/%s: %d injected faults, %.1f%% failures\n",
			set.Workload, set.Supervision, d.Total, set.FailurePct())
		if set.Partial {
			fmt.Printf("PARTIAL results: the campaign was stopped before completing its plan\n")
		}
		fmt.Print(report.TopFailures(set, 50))
		if perClass := report.PerClass(set, avail.EstimateClasses(set, avail.DefaultAssumptions())); perClass != "" {
			fmt.Print("\n", perClass)
		}
		if clusterView := report.Cluster(set); clusterView != "" {
			fmt.Print("\n", clusterView)
		}
		if len(set.Quarantined) != 0 {
			fmt.Print("\n", report.Quarantine(set.Quarantined))
		}
	case "figure2":
		if archive.Experiment == nil {
			return fmt.Errorf("archive holds %q, not figure2 data", archive.Kind)
		}
		fmt.Print(report.Figure2(archive.Experiment))
		fmt.Print("\n", report.FailureMatrix(archive.Experiment))
	case "figure3":
		rows, err := needFigure2(archive, experiments.Figure3)
		if err != nil {
			return err
		}
		fmt.Print(report.Figure3(rows))
	case "table2":
		rows, err := needFigure2(archive, experiments.Table2)
		if err != nil {
			return err
		}
		fmt.Print(report.Table2(rows))
	case "figure4":
		cells, err := needFigure2(archive, experiments.Figure4)
		if err != nil {
			return err
		}
		fmt.Print(report.Figure4(cells))
	case "figure5":
		if archive.Figure5 == nil {
			return fmt.Errorf("archive holds %q, not figure5 data", archive.Kind)
		}
		fmt.Print(report.Figure5(archive.Figure5))
	case "availability":
		if archive.Experiment == nil {
			return fmt.Errorf("artifact availability needs a figure2 archive")
		}
		ests, err := experiments.Availability(archive.Experiment, avail.DefaultAssumptions())
		if err != nil {
			return err
		}
		fmt.Print(report.Availability(ests))
	case "failures":
		if archive.Experiment == nil {
			return fmt.Errorf("artifact failures needs a figure2 archive")
		}
		for _, set := range archive.Experiment.Sets {
			fmt.Print(report.TopFailures(set, 10), "\n")
		}
	default:
		return fmt.Errorf("unknown artifact %q", name)
	}
	return nil
}

// diffArchives loads two single-set archives and renders their
// failure-matrix delta.
func diffArchives(pathA, pathB string, out io.Writer) error {
	qa, err := analysis.OpenArchive(pathA)
	if err != nil {
		return classify(err)
	}
	qb, err := analysis.OpenArchive(pathB)
	if err != nil {
		return classify(err)
	}
	a, err := qa.Set()
	if err != nil {
		return err
	}
	b, err := qb.Set()
	if err != nil {
		return err
	}
	fmt.Fprint(out, report.Delta(analysis.Diff(a, b)))
	return nil
}

// renderFitness scores every set the archive holds.
func renderFitness(q *analysis.Query, spec string, out io.Writer) error {
	w, err := analysis.ParseWeights(spec)
	if err != nil {
		return err
	}
	sets := q.Sets()
	if len(sets) == 0 {
		return fmt.Errorf("archive holds %q, which has no workload sets to score", q.Archive.Kind)
	}
	for _, set := range sets {
		fmt.Fprint(out, report.Fitness(analysis.Label(set), analysis.Fitness(set, w), w))
	}
	return nil
}

// renderAnomalies flags recovery-time outliers in every set.
func renderAnomalies(q *analysis.Query, k float64, out io.Writer) error {
	sets := q.Sets()
	if len(sets) == 0 {
		return fmt.Errorf("archive holds %q, which has no workload sets to scan", q.Archive.Kind)
	}
	var all []analysis.Anomaly
	for _, set := range sets {
		all = append(all, analysis.RecoveryOutliers(set, k)...)
	}
	fmt.Fprint(out, report.Anomalies(all))
	return nil
}

// summarizeTrace ingests a JSONL telemetry trace and prints the §4.3-style
// post-mortem view: how many runs the trace covers, what the simulated
// system was doing (events by kind, busiest API functions) and how far the
// fault lifecycle got (armed → activated → injected).
func summarizeTrace(path string, out io.Writer) error {
	q, err := analysis.OpenTrace(path)
	if err != nil {
		return classify(err)
	}
	t := q.Trace
	if t.Events == 0 {
		fmt.Fprintln(out, "trace is empty")
		return nil
	}
	fmt.Fprintf(out, "trace: %d events across %d runs, virtual span %s\n",
		t.Events, t.Runs, t.Span)
	fmt.Fprintln(out, "events by kind:")
	for _, k := range t.KindsByCount() {
		fmt.Fprintf(out, "  %-18s %d\n", k, t.Kinds[k])
	}
	if len(t.Syscalls) > 0 {
		fmt.Fprintln(out, "busiest API functions:")
		for _, fn := range t.BusiestSyscalls(10) {
			fmt.Fprintf(out, "  %-18s %d\n", fn, t.Syscalls[fn])
		}
	}
	fmt.Fprintf(out, "fault lifecycle: %d armed, %d activated, %d injected\n",
		t.Armed, t.Activated, t.Injected)
	return nil
}

// summarizeJournal replays a campaign journal and reports how far the
// campaign got — the quick triage view for a crashed or interrupted run.
func summarizeJournal(path string, out io.Writer) error {
	q, err := analysis.OpenJournal(path)
	if err != nil {
		return classify(err)
	}
	j := q.Journal
	fmt.Fprintf(out, "journal: %s/%s, %d runs recorded, %d quarantined\n",
		j.Header.Workload, j.Header.Supervision, j.Records, j.Quarantined)
	if j.HasPlan {
		fmt.Fprintf(out, "plan: %d jobs (%d remaining)\n", j.PlanJobs, j.Remaining())
	}
	if j.Torn {
		fmt.Fprintln(out, "torn final record (process died mid-write); a resume discards it")
	}
	if len(j.Dispatch) > 0 {
		fmt.Fprintf(out, "fleet dispatch: %d chunks assigned, %d redispatched, %d speculated, %d drained in-process, %d worker slots exhausted\n",
			j.Dispatch["assign"], j.Dispatch["redispatch"], j.Dispatch["speculate"], j.Dispatch["local"], j.Dispatch["exhausted"])
		if j.Degraded {
			fmt.Fprintln(out, "fleet DEGRADED: the campaign completed in-process after worker budgets were exhausted (results are still complete)")
		}
	}
	fmt.Fprintf(out, "resume with:\n  dts -resume %s\n", path)
	return nil
}

// needFigure2 adapts the derived-artifact constructors.
func needFigure2[T any](a *experiments.Archive, build func(*core.Experiment) (T, error)) (T, error) {
	var zero T
	if a.Experiment == nil {
		return zero, fmt.Errorf("this artifact derives from figure2 data; archive holds %q", a.Kind)
	}
	return build(a.Experiment)
}
