package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ntdts/internal/analysis"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden rendering files from live output")

// goldenSets builds the deterministic before/after pair the golden
// renderings pin: a watchd-v3 swap that fixes two ReadFile failures,
// breaks a CreateFileA success, and leaves one run a slow outlier.
func goldenSets() (a, b *core.SetResult) {
	faults := []inject.FaultSpec{
		{Function: "CreateFileA", Param: 1, Invocation: 1, Type: inject.FlipBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.ZeroBits},
		{Function: "ReadFile", Param: 1, Invocation: 1, Type: inject.OneBits},
		{Function: "WriteFile", Param: 2, Invocation: 1, Type: inject.ZeroBits},
	}
	build := func(sup string, ver int, outcomes []core.Outcome) *core.SetResult {
		set := &core.SetResult{Workload: "IIS", Supervision: sup, WatchdVersion: ver,
			ActivatedFns: 4, FaultFreeSec: 10}
		for i, f := range faults {
			o := outcomes[i]
			r := core.RunResult{Fault: f, Activated: true, Injected: true,
				Outcome: o, Completed: o != core.Failure, ResponseSec: 10}
			if o == core.RestartSuccess {
				r.Restarts, r.ResponseSec = 1, 14
			}
			set.Runs = append(set.Runs, r)
		}
		return set
	}
	a = build("none", 0, []core.Outcome{core.NormalSuccess, core.Failure, core.Failure, core.NormalSuccess})
	b = build("watchd", 3, []core.Outcome{core.Failure, core.RestartSuccess, core.NormalSuccess, core.NormalSuccess})
	b.Runs[3].ResponseSec = 90 // the recovery outlier
	return a, b
}

func saveSetArchive(t *testing.T, set *core.SetResult, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := (&experiments.Archive{Kind: "set", Set: set}).Save(f); err != nil {
		t.Fatal(err)
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenRenderings pins the -diff, -fitness and -anomalies output
// byte for byte.
func TestGoldenRenderings(t *testing.T) {
	aSet, bSet := goldenSets()
	dir := t.TempDir()
	aPath, bPath := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	saveSetArchive(t, aSet, aPath)
	saveSetArchive(t, bSet, bPath)

	var out bytes.Buffer
	if err := diffArchives(aPath, bPath, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.golden", out.Bytes())

	out.Reset()
	qb, err := analysis.OpenArchive(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := renderFitness(qb, "", &out); err != nil {
		t.Fatal(err)
	}
	if err := renderFitness(qb, "avail=2,recovery=1,quarantine=0.5", &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fitness.golden", out.Bytes())

	out.Reset()
	if err := renderAnomalies(qb, 5, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "anomalies.golden", out.Bytes())
}

// TestGoldenSummaries pins the -trace and -journal summaries byte for
// byte — the renderings the analysis-loader migration must not perturb.
func TestGoldenSummaries(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeJournal(fleetJournalFixture(t, true), &out); err != nil {
		t.Fatal(err)
	}
	// The resume hint embeds the temp path; strip the final line's
	// variable part so the golden stays stable.
	sum := out.String()
	if i := bytes.LastIndexByte([]byte(sum), ' '); i >= 0 {
		sum = sum[:i+1] + "<path>\n"
	}
	checkGolden(t, "journal_summary.golden", []byte(sum))

	lines := `{"run":0,"at":10,"pid":1,"kind":"syscall","name":"ReadFile","a":0,"b":0}
{"run":0,"at":20,"pid":1,"kind":"syscall","name":"CloseHandle","a":0,"b":0}
{"run":1,"at":35,"pid":1,"kind":"syscall","name":"ReadFile","a":0,"b":0}
{"run":1,"at":40,"pid":0,"kind":"fault-armed","name":"ReadFile","a":0,"b":0}
{"run":1,"at":50,"pid":0,"kind":"fault-activated","name":"ReadFile","a":0,"b":0}
{"run":1,"at":60,"pid":0,"kind":"fault-injected","name":"ReadFile","a":7,"b":8}
`
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := summarizeTrace(path, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace_summary.golden", out.Bytes())
}

// TestDiffFitnessFlagSurface drives the new modes through the flag
// parser end to end.
func TestDiffFitnessFlagSurface(t *testing.T) {
	aSet, bSet := goldenSets()
	dir := t.TempDir()
	aPath, bPath := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	saveSetArchive(t, aSet, aPath)
	saveSetArchive(t, bSet, bPath)

	if err := run([]string{"-diff", aPath, bPath}); err != nil {
		t.Errorf("-diff: %v", err)
	}
	if err := run([]string{"-diff", aPath}); err == nil {
		t.Error("-diff with one path accepted")
	}
	if err := run([]string{"-fitness", "-in", bPath, "-weights", "avail=1"}); err != nil {
		t.Errorf("-fitness: %v", err)
	}
	if err := run([]string{"-fitness", "-in", bPath, "-weights", "bogus=1"}); err == nil {
		t.Error("bad -weights accepted")
	}
	if err := run([]string{"-anomalies", "-in", bPath, "-mad", "3"}); err != nil {
		t.Errorf("-anomalies: %v", err)
	}
}
