package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
	"ntdts/internal/telemetry"
)

// writeArchive saves a minimal figure2 archive for rendering tests.
func writeArchive(t *testing.T) string {
	t.Helper()
	exp := &core.Experiment{}
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		for _, sup := range []string{"none", "MSCS", "watchd"} {
			set := &core.SetResult{Workload: wl, Supervision: sup, ActivatedFns: 5, FaultFreeSec: 14}
			for i := 0; i < 4; i++ {
				o := core.NormalSuccess
				if i == 3 {
					o = core.Failure
				}
				set.Runs = append(set.Runs, core.RunResult{
					Fault:       inject.FaultSpec{Function: "F", Param: i, Invocation: 1, Type: inject.ZeroBits},
					Injected:    true,
					Outcome:     o,
					Completed:   o != core.Failure,
					ResponseSec: 15,
				})
			}
			exp.Sets = append(exp.Sets, set)
		}
	}
	path := filepath.Join(t.TempDir(), "fig2.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := (&experiments.Archive{Kind: "figure2", Experiment: exp}).Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderAllArtifactsFromFigure2(t *testing.T) {
	path := writeArchive(t)
	for _, artifact := range []string{"auto", "figure2", "figure3", "table2", "figure4", "failures"} {
		if err := run([]string{"-in", path, "-artifact", artifact}); err != nil {
			t.Errorf("artifact %s: %v", artifact, err)
		}
	}
}

func TestRenderWrongArtifactKind(t *testing.T) {
	path := writeArchive(t)
	for _, artifact := range []string{"table1", "figure5", "set", "bogus"} {
		if err := run([]string{"-in", path, "-artifact", artifact}); err == nil {
			t.Errorf("artifact %s accepted on a figure2 archive", artifact)
		}
	}
}

func TestRenderMissingFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Fatal("missing archive accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing -in accepted")
	}
}

func TestRenderCorruptArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"kind":"figure2"}`), 0o644)
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("archive without payload accepted")
	}
	os.WriteFile(path, []byte(`not json`), 0o644)
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("non-JSON archive accepted")
	}
}

func TestRenderAvailability(t *testing.T) {
	path := writeArchive(t)
	if err := run([]string{"-in", path, "-artifact", "availability"}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceSummary feeds a synthetic telemetry trace through -trace
// ingestion and checks the summary content.
func TestTraceSummary(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	rec.Emit(0, 1, telemetry.KindSpawn, "server.exe", 0, 0)
	rec.Emit(10, 1, telemetry.KindSyscall, "ReadFile", 5, 0)
	rec.Emit(20, 1, telemetry.KindSyscall, "ReadFile", 5, 0)
	rec.Emit(30, 1, telemetry.KindSyscall, "CloseHandle", 1, 0)
	rec.Emit(40, 0, telemetry.KindFaultArmed, "ReadFile p1 i1 flip", 1, 1)
	rec.Emit(50, 0, telemetry.KindFaultActivated, "ReadFile p1 i1 flip", 1, 0)
	rec.Emit(60, 0, telemetry.KindFaultInjected, "ReadFile p1 i1 flip", 7, 8)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.NewSet(rec).WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := summarizeTrace(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"7 events across 1 runs",
		"ReadFile           2",
		"1 armed, 1 activated, 1 injected",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	// The run flag path reaches the same summarizer.
	if err := run([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceSummaryErrors covers the failure paths of -trace.
func TestTraceSummaryErrors(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeTrace("/nonexistent/trace.jsonl", &out); err == nil {
		t.Fatal("missing trace accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	os.WriteFile(bad, []byte("{not json\n"), 0o644)
	if err := summarizeTrace(bad, &out); err == nil {
		t.Fatal("corrupt trace accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	out.Reset()
	if err := summarizeTrace(empty, &out); err != nil || !strings.Contains(out.String(), "empty") {
		t.Fatalf("empty trace: err=%v out=%q", err, out.String())
	}
}

// journalFixture writes a minimal valid campaign journal.
func journalFixture(t *testing.T, tail string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.journal")
	data := `{"kind":"header","version":1,"workload":"IIS","supervision":"none","serverUpTimeoutNS":1,"runDeadlineNS":2}
{"kind":"plan","jobs":["ReadFile/0/1/zero","WriteFile/0/1/zero"],"fingerprint":"x"}
{"kind":"run","index":0,"key":"ReadFile/0/1/zero","result":{}}
` + tail
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestJournalSummary covers the -journal triage view: progress, the
// remaining-work count, the torn-tail note and the resume hint.
func TestJournalSummary(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeJournal(journalFixture(t, ""), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IIS/none", "1 runs recorded", "2 jobs (1 remaining)", "dts -resume"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := summarizeJournal(journalFixture(t, `{"kind":"run","ind`), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "torn final record") {
		t.Errorf("torn journal summary missing the torn note:\n%s", out.String())
	}
	if err := run([]string{"-journal", journalFixture(t, "")}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptInputsExitDistinctly pins the fixed bug: unreadable or
// corrupt archives, traces and journals must carry the corrupt-input
// marker (exit 2), not pass silently or exit as a usage error.
func TestCorruptInputsExitDistinctly(t *testing.T) {
	dir := t.TempDir()
	trailing := filepath.Join(dir, "trailing.json")
	os.WriteFile(trailing, []byte(`{"kind":"set","set":{"workload":"IIS","supervision":"none","runs":[]}}`+"\ngarbage"), 0o644)
	midGarbage := journalFixture(t, "not json at all\n"+`{"kind":"run","index":1,"key":"WriteFile/0/1/zero","result":{}}`+"\n")
	strayStream := journalFixture(t, `{"kind":"heartbeat","index":1}`+"\n")
	cases := []struct {
		name string
		args []string
	}{
		{"missing archive", []string{"-in", filepath.Join(dir, "nope.json")}},
		{"non-JSON archive", []string{"-in", func() string {
			p := filepath.Join(dir, "bad.json")
			os.WriteFile(p, []byte("not json"), 0o644)
			return p
		}()}},
		{"trailing-garbage archive", []string{"-in", trailing}},
		{"missing trace", []string{"-trace", filepath.Join(dir, "nope.jsonl")}},
		{"missing journal", []string{"-journal", filepath.Join(dir, "nope.journal")}},
		{"corrupt journal", []string{"-journal", midGarbage}},
		{"stray stream record", []string{"-journal", strayStream}},
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var ci *corruptInput
		if !errors.As(err, &ci) {
			t.Errorf("%s: error %v is not classified as corrupt input", c.name, err)
		}
	}
	// A bad invocation stays a plain error — automation tells the two apart.
	if err := run([]string{"-in", writeArchive(t), "-artifact", "bogus"}); err != nil {
		var ci *corruptInput
		if errors.As(err, &ci) {
			t.Errorf("usage error misclassified as corrupt input: %v", err)
		}
	} else {
		t.Error("bogus artifact accepted")
	}
}

// TestRenderSetWithClasses checks that a generated-cohort set archive
// renders the per-class reliability table between the failure list and
// the quarantine section.
func TestRenderSetWithClasses(t *testing.T) {
	set := &core.SetResult{Workload: "Apache1", Supervision: "none", ActivatedFns: 5}
	for i := 0; i < 3; i++ {
		set.Runs = append(set.Runs, core.RunResult{
			Fault:     inject.FaultSpec{Function: "F", Param: i, Invocation: 1, Type: inject.ZeroBits},
			Injected:  true,
			Outcome:   core.NormalSuccess,
			Completed: true,
			Classes: []core.ClassOutcome{
				{Class: "browser", Clients: 5, Requests: 30, Succeeded: 27, Responded: 30,
					Recoveries: 3, RecoverySecSum: 45, ResponseSecSum: 90},
			},
		})
	}
	path := filepath.Join(t.TempDir(), "set.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&experiments.Archive{Kind: "set", Set: set}).Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := captureStdout(t, func() {
		if err := run([]string{"-in", path}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"Per-class reliability, Apache1/none", "browser", "0.9000"} {
		if !strings.Contains(got, want) {
			t.Errorf("set rendering missing %q:\n%s", want, got)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		var b bytes.Buffer
		b.ReadFrom(r)
		done <- b.String()
	}()
	fn()
	w.Close()
	out := <-done
	os.Stdout = orig
	return out
}

// fleetJournalFixture is journalFixture plus a dispatch provenance
// trail, optionally ending degraded.
func fleetJournalFixture(t *testing.T, degraded bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.journal")
	data := `{"kind":"header","version":1,"workload":"IIS","supervision":"none","serverUpTimeoutNS":1,"runDeadlineNS":2}
{"kind":"plan","jobs":["ReadFile/0/1/zero","WriteFile/0/1/zero"],"fingerprint":"x"}
{"kind":"assign","worker":0,"event":"assign","indices":[0]}
{"kind":"assign","worker":1,"event":"assign","indices":[1]}
{"kind":"run","index":0,"key":"ReadFile/0/1/zero","result":{}}
{"kind":"assign","worker":1,"event":"redispatch","indices":[1]}
{"kind":"assign","worker":0,"event":"speculate","indices":[1]}
{"kind":"run","index":1,"key":"WriteFile/0/1/zero","result":{}}
`
	if degraded {
		data += `{"kind":"assign","worker":1,"event":"exhausted"}
{"kind":"assign","worker":-1,"event":"local","indices":[1]}
{"kind":"assign","worker":-1,"event":"degraded"}
`
	}
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestJournalFleetDispatchSummary covers the fleet provenance view: the
// dispatch counts line, and the DEGRADED note only when the journal
// records a degraded completion.
func TestJournalFleetDispatchSummary(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeJournal(fleetJournalFixture(t, false), &out); err != nil {
		t.Fatal(err)
	}
	want := "fleet dispatch: 2 chunks assigned, 1 redispatched, 1 speculated, 0 drained in-process, 0 worker slots exhausted"
	if !strings.Contains(out.String(), want) {
		t.Errorf("summary missing %q:\n%s", want, out.String())
	}
	if strings.Contains(out.String(), "DEGRADED") {
		t.Errorf("clean fleet journal rendered a DEGRADED note:\n%s", out.String())
	}

	out.Reset()
	if err := summarizeJournal(fleetJournalFixture(t, true), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1 drained in-process", "1 worker slots exhausted", "fleet DEGRADED"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("degraded summary missing %q:\n%s", want, out.String())
		}
	}
}
