package main

import (
	"os"
	"path/filepath"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
)

// writeArchive saves a minimal figure2 archive for rendering tests.
func writeArchive(t *testing.T) string {
	t.Helper()
	exp := &core.Experiment{}
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		for _, sup := range []string{"none", "MSCS", "watchd"} {
			set := &core.SetResult{Workload: wl, Supervision: sup, ActivatedFns: 5, FaultFreeSec: 14}
			for i := 0; i < 4; i++ {
				o := core.NormalSuccess
				if i == 3 {
					o = core.Failure
				}
				set.Runs = append(set.Runs, core.RunResult{
					Fault:       inject.FaultSpec{Function: "F", Param: i, Invocation: 1, Type: inject.ZeroBits},
					Injected:    true,
					Outcome:     o,
					Completed:   o != core.Failure,
					ResponseSec: 15,
				})
			}
			exp.Sets = append(exp.Sets, set)
		}
	}
	path := filepath.Join(t.TempDir(), "fig2.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := (&experiments.Archive{Kind: "figure2", Experiment: exp}).Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderAllArtifactsFromFigure2(t *testing.T) {
	path := writeArchive(t)
	for _, artifact := range []string{"auto", "figure2", "figure3", "table2", "figure4", "failures"} {
		if err := run([]string{"-in", path, "-artifact", artifact}); err != nil {
			t.Errorf("artifact %s: %v", artifact, err)
		}
	}
}

func TestRenderWrongArtifactKind(t *testing.T) {
	path := writeArchive(t)
	for _, artifact := range []string{"table1", "figure5", "set", "bogus"} {
		if err := run([]string{"-in", path, "-artifact", artifact}); err == nil {
			t.Errorf("artifact %s accepted on a figure2 archive", artifact)
		}
	}
}

func TestRenderMissingFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Fatal("missing archive accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing -in accepted")
	}
}

func TestRenderCorruptArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"kind":"figure2"}`), 0o644)
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("archive without payload accepted")
	}
	os.WriteFile(path, []byte(`not json`), 0o644)
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("non-JSON archive accepted")
	}
}

func TestRenderAvailability(t *testing.T) {
	path := writeArchive(t)
	if err := run([]string{"-in", path, "-artifact", "availability"}); err != nil {
		t.Fatal(err)
	}
}
