package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
	"ntdts/internal/telemetry"
)

// writeArchive saves a minimal figure2 archive for rendering tests.
func writeArchive(t *testing.T) string {
	t.Helper()
	exp := &core.Experiment{}
	for _, wl := range []string{"Apache1", "Apache2", "IIS", "SQL"} {
		for _, sup := range []string{"none", "MSCS", "watchd"} {
			set := &core.SetResult{Workload: wl, Supervision: sup, ActivatedFns: 5, FaultFreeSec: 14}
			for i := 0; i < 4; i++ {
				o := core.NormalSuccess
				if i == 3 {
					o = core.Failure
				}
				set.Runs = append(set.Runs, core.RunResult{
					Fault:       inject.FaultSpec{Function: "F", Param: i, Invocation: 1, Type: inject.ZeroBits},
					Injected:    true,
					Outcome:     o,
					Completed:   o != core.Failure,
					ResponseSec: 15,
				})
			}
			exp.Sets = append(exp.Sets, set)
		}
	}
	path := filepath.Join(t.TempDir(), "fig2.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := (&experiments.Archive{Kind: "figure2", Experiment: exp}).Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderAllArtifactsFromFigure2(t *testing.T) {
	path := writeArchive(t)
	for _, artifact := range []string{"auto", "figure2", "figure3", "table2", "figure4", "failures"} {
		if err := run([]string{"-in", path, "-artifact", artifact}); err != nil {
			t.Errorf("artifact %s: %v", artifact, err)
		}
	}
}

func TestRenderWrongArtifactKind(t *testing.T) {
	path := writeArchive(t)
	for _, artifact := range []string{"table1", "figure5", "set", "bogus"} {
		if err := run([]string{"-in", path, "-artifact", artifact}); err == nil {
			t.Errorf("artifact %s accepted on a figure2 archive", artifact)
		}
	}
}

func TestRenderMissingFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Fatal("missing archive accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing -in accepted")
	}
}

func TestRenderCorruptArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"kind":"figure2"}`), 0o644)
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("archive without payload accepted")
	}
	os.WriteFile(path, []byte(`not json`), 0o644)
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("non-JSON archive accepted")
	}
}

func TestRenderAvailability(t *testing.T) {
	path := writeArchive(t)
	if err := run([]string{"-in", path, "-artifact", "availability"}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceSummary feeds a synthetic telemetry trace through -trace
// ingestion and checks the summary content.
func TestTraceSummary(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	rec.Emit(0, 1, telemetry.KindSpawn, "server.exe", 0, 0)
	rec.Emit(10, 1, telemetry.KindSyscall, "ReadFile", 5, 0)
	rec.Emit(20, 1, telemetry.KindSyscall, "ReadFile", 5, 0)
	rec.Emit(30, 1, telemetry.KindSyscall, "CloseHandle", 1, 0)
	rec.Emit(40, 0, telemetry.KindFaultArmed, "ReadFile p1 i1 flip", 1, 1)
	rec.Emit(50, 0, telemetry.KindFaultActivated, "ReadFile p1 i1 flip", 1, 0)
	rec.Emit(60, 0, telemetry.KindFaultInjected, "ReadFile p1 i1 flip", 7, 8)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.NewSet(rec).WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := summarizeTrace(path, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"7 events across 1 runs",
		"ReadFile           2",
		"1 armed, 1 activated, 1 injected",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	// The run flag path reaches the same summarizer.
	if err := run([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceSummaryErrors covers the failure paths of -trace.
func TestTraceSummaryErrors(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeTrace("/nonexistent/trace.jsonl", &out); err == nil {
		t.Fatal("missing trace accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	os.WriteFile(bad, []byte("{not json\n"), 0o644)
	if err := summarizeTrace(bad, &out); err == nil {
		t.Fatal("corrupt trace accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	out.Reset()
	if err := summarizeTrace(empty, &out); err != nil || !strings.Contains(out.String(), "empty") {
		t.Fatalf("empty trace: err=%v out=%q", err, out.String())
	}
}
