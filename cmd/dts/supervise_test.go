package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntdts/internal/experiments"
)

// writeChaosList writes a config + fault list mixing the reserved chaos
// functions with ordinary faults.
func writeChaosList(t *testing.T, dir, faults string) string {
	t.Helper()
	listPath := filepath.Join(dir, "faults.lst")
	if err := os.WriteFile(listPath, []byte(faults), 0o644); err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "dts.cfg")
	if err := os.WriteFile(cfgPath, []byte(
		"workload = IIS\nmiddleware = none\nfault_list = "+listPath+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath
}

// TestRunChaosQuarantine: a deliberately panicking and a deliberately
// hanging spec are quarantined with evidence in the report; the ordinary
// runs complete and the archive records the quarantine placeholders.
func TestRunChaosQuarantine(t *testing.T) {
	dir := t.TempDir()
	cfgPath := writeChaosList(t, dir,
		"ReadFile 1 1 flip\nDTSChaosPanic 0 1 flip\nDTSChaosHang 0 1 flip\nGetVersionExA 0 1 zero\n")
	outPath := filepath.Join(dir, "out.json")
	var out bytes.Buffer
	err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-chaos", "-run-deadline", "100ms", "-retries", "1", "-parallel", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"Quarantined runs: 2",
		"DTSChaosPanic", "panic after 2 attempts", "deliberate panic",
		"DTSChaosHang", "hang after 2 attempts", "wall-clock deadline",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("quarantine report missing %q:\n%s", want, text)
		}
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := experiments.LoadArchive(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Set.Runs) != 4 || len(a.Set.Quarantined) != 2 {
		t.Fatalf("archive: %d runs, %d quarantined", len(a.Set.Runs), len(a.Set.Quarantined))
	}
	if a.Set.Partial {
		t.Fatal("completed campaign marked partial")
	}
	if !a.Set.Runs[1].Quarantined || !a.Set.Runs[2].Quarantined {
		t.Fatal("quarantine placeholders not flagged in runs")
	}
}

// TestRunMaxQuarantinedBudget: crossing -max-quarantined stops the
// campaign with the dedicated exit code and saves partial results.
func TestRunMaxQuarantinedBudget(t *testing.T) {
	dir := t.TempDir()
	cfgPath := writeChaosList(t, dir,
		"DTSChaosPanic 0 1 flip\nReadFile 1 1 flip\nGetVersionExA 0 1 zero\n")
	outPath := filepath.Join(dir, "out.json")
	var out bytes.Buffer
	err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-chaos", "-retries", "0", "-max-quarantined", "1", "-parallel", "1"}, &out)
	var ee *exitError
	if !errors.As(err, &ee) || ee.code != exitQuarantineBudget {
		t.Fatalf("budget overrun returned %v, want exit code %d", err, exitQuarantineBudget)
	}
	if !strings.Contains(out.String(), "quarantine budget reached") {
		t.Fatalf("output missing budget message:\n%s", out.String())
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := experiments.LoadArchive(f)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Set.Partial {
		t.Fatal("budget-stopped archive not marked partial")
	}
	if len(a.Set.Quarantined) != 1 {
		t.Fatalf("%d quarantined, want 1", len(a.Set.Quarantined))
	}
}

func TestRunFlagConflicts(t *testing.T) {
	var out bytes.Buffer
	for _, tc := range [][]string{
		{"-resume", "x.journal", "-config", "dts.cfg"},
		{"-resume", "x.journal", "-experiment", "table1"},
		{"-resume", "x.journal", "-conformance"},
		{"-resume", "x.journal", "-journal", "y.journal"},
		{"-journal", "x.journal", "-experiment", "table1"},
		{"-journal", "x.journal", "-conformance"},
		{"-experiment", "table1", "-retries", "-1"},
	} {
		if err := run(tc, &out); err == nil {
			t.Errorf("args %v accepted", tc)
		}
	}
}

// TestRunResumeTelemetryMismatch: a journal records whether telemetry was
// collected; resuming with a different setting cannot be byte-identical,
// so it is refused with a directive error.
func TestRunResumeTelemetryMismatch(t *testing.T) {
	dir := t.TempDir()
	cfgPath := writeChaosList(t, dir, "ReadFile 1 1 flip\nGetVersionExA 0 1 zero\n")
	jpath := filepath.Join(dir, "t.journal")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-q", "-journal", jpath,
		"-out", filepath.Join(dir, "out.json")}, &out); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-resume", jpath, "-metrics", "-q"}, &out)
	if err == nil || !strings.Contains(err.Error(), "telemetry") {
		t.Fatalf("telemetry mismatch returned %v", err)
	}
	// Matching setting resumes cleanly (everything replays).
	if err := run([]string{"-resume", jpath, "-q"}, &out); err != nil {
		t.Fatalf("clean resume: %v", err)
	}
}

// TestRunResumeMissingJournal: a bad journal path is a plain error.
func TestRunResumeMissingJournal(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-resume", filepath.Join(t.TempDir(), "absent.journal")}, &out); err == nil {
		t.Fatal("missing journal accepted")
	}
}
