package main

// Work-stealing fleet self-tests at the CLI layer: real dts worker
// processes (this test binary re-exec'd through TestHelperProcess),
// the DTS_SHARD_CHAOS_HANG wedge drill, the degraded-completion exit
// code, and the -workers flag family validation.

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ntdts/internal/journal"
)

// TestFleetArchiveMatchesUnsharded runs the 200-spec campaign through a
// work-stealing fleet of four real worker processes, with a journal
// attached, and requires the archive to byte-match the unsharded run
// and the journal to carry the dispatch provenance trail.
func TestFleetArchiveMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec fleet test")
	}
	t.Setenv("DTS_HELPER_PROCESS", "1") // workerSpawner re-enters via TestHelperProcess
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := unshardedArchive(t, dir, cfgPath)

	outPath := filepath.Join(dir, "fleet.json")
	jPath := filepath.Join(dir, "fleet.journal")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", outPath,
		"-workers", "4", "-parallel", "1", "-journal", jPath}, &out); err != nil {
		t.Fatalf("fleet campaign: %v", err)
	}
	fleet, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, fleet) {
		t.Fatal("archive from dts -workers 4 differs from the unsharded run")
	}
	if !strings.Contains(out.String(), "fleet: 4 workers (exec)") {
		t.Fatalf("summary missing the fleet line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "DEGRADED") {
		t.Fatalf("clean fleet run printed a degraded summary:\n%s", out.String())
	}

	rep, err := journal.Replay(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan == nil || len(rep.Runs) != len(rep.Plan.Jobs) {
		t.Fatalf("journal incomplete: plan %v, %d runs", rep.Plan != nil, len(rep.Runs))
	}
	assigns := 0
	for _, ev := range rep.Dispatch {
		if ev.Event == "assign" {
			assigns++
		}
	}
	if assigns < 4 {
		t.Fatalf("journal records %d assign events, want >= 4", assigns)
	}
}

// TestFleetChaosHangRedispatch is the DTS_SHARD_CHAOS_HANG drill with
// real processes: worker 1's first process wedges after five records
// with heartbeats still flowing. The fleet must finish anyway — the
// wedged chunk's remainder is speculated or re-dispatched — and the
// archive must still byte-match the unsharded run.
func TestFleetChaosHangRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec fleet test")
	}
	t.Setenv("DTS_HELPER_PROCESS", "1")
	t.Setenv("DTS_SHARD_CHAOS_HANG", "1:5")
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := unshardedArchive(t, dir, cfgPath)

	outPath := filepath.Join(dir, "hang.json")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-workers", "4", "-chaos"}, &out); err != nil {
		t.Fatalf("fleet campaign with wedged worker: %v", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, got) {
		t.Fatal("archive after worker wedge differs from the unsharded run")
	}
}

// TestFleetChaosKillRedispatch: the SIGKILL drill through the stealing
// dispatcher — worker 1's first process kills itself mid-chunk and the
// merged archive still byte-matches.
func TestFleetChaosKillRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec fleet test")
	}
	t.Setenv("DTS_HELPER_PROCESS", "1")
	t.Setenv("DTS_SHARD_CHAOS_KILL", "1:5")
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := unshardedArchive(t, dir, cfgPath)

	outPath := filepath.Join(dir, "kill.json")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-workers", "4", "-chaos"}, &out); err != nil {
		t.Fatalf("fleet campaign with killed worker: %v", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, got) {
		t.Fatal("archive after worker SIGKILL differs from the unsharded run")
	}
}

// TestFleetDegradedExitCode points the fleet at a dead TCP address:
// every spawn fails, the respawn budget burns out, and the campaign
// must still complete — in-process, byte-identical — while exiting
// with the dedicated degraded code so automation can tell the
// difference.
func TestFleetDegradedExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("slow fleet test")
	}
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := unshardedArchive(t, dir, cfgPath)

	// Bind a port, then free it: a dial target that refuses quickly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	outPath := filepath.Join(dir, "degraded.json")
	var out bytes.Buffer
	runErr := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-workers", deadAddr}, &out)
	var ee *exitError
	if !errors.As(runErr, &ee) || ee.code != exitDegraded {
		t.Fatalf("err = %v, want exitError code %d (degraded completion)", runErr, exitDegraded)
	}
	if !strings.Contains(out.String(), "DEGRADED") {
		t.Fatalf("summary missing the degraded line:\n%s", out.String())
	}
	got, rerr := os.ReadFile(outPath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(golden, got) {
		t.Fatal("degraded-completion archive differs from the unsharded run")
	}
}

// TestWorkersFlagValidation: the fleet flag family fails fast on
// conflicting or malformed requests.
func TestWorkersFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	var out bytes.Buffer
	for _, c := range []struct {
		args []string
		want string
	}{
		{[]string{"-config", cfgPath, "-workers", "4", "-shards", "2"}, "mutually exclusive"},
		{[]string{"-config", cfgPath, "-workers", "4", "-run-deadline", "1s"}, "-workers"},
		{[]string{"-config", cfgPath, "-workers", "4", "-max-quarantined", "3"}, "-workers"},
		{[]string{"-workers", "4", "-experiment", "table1"}, "-workers"},
		{[]string{"-config", cfgPath, "-workers", "0"}, ">= 1"},
		{[]string{"-config", cfgPath, "-workers", "bogus"}, "neither a worker count nor host:port"},
		{[]string{"-config", cfgPath, "-workers", ","}, "names no workers"},
		{[]string{"-worker-listen", ":0", "-config", cfgPath}, "-worker-listen"},
	} {
		err := run(c.args, &out)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v: err = %v, want %q", c.args, err, c.want)
		}
	}
}

// TestWorkerListenServesRemoteFleet: a real `dts -worker-listen` child
// process hosts the workers; the coordinator in this process dials it
// with -workers host:port and the archive must byte-match the
// unsharded run — the full TCP transport through real processes.
func TestWorkerListenServesRemoteFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec fleet test")
	}
	t.Setenv("DTS_HELPER_PROCESS", "1")
	t.Setenv("DTS_WORKER_KEY", "cmd-fleet-key")
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := unshardedArchive(t, dir, cfgPath)

	// Pick a free port, then hand it to the worker host child.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	host := dtsChild("-worker-listen", addr)
	var hostOut bytes.Buffer
	host.Stdout, host.Stderr = &hostOut, &hostOut
	if err := host.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		host.Process.Kill()
		host.Wait()
	}()
	waitForListener(t, addr)

	outPath := filepath.Join(dir, "tcp.json")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-workers", addr + "," + addr}, &out); err != nil {
		t.Fatalf("TCP fleet campaign: %v\nworker host output:\n%s", err, hostOut.String())
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, got) {
		t.Fatal("archive from the TCP fleet differs from the unsharded run")
	}
}

// waitForListener polls until addr accepts connections.
func waitForListener(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker host on %s never came up", addr)
}
