package main

// Chaos self-tests for the campaign supervisor: a child dts process is
// SIGKILLed (and SIGTERMed) mid-campaign, then the journal is resumed
// in-process and the final archive must be byte-identical to an
// uninterrupted run. The child is this test binary re-exec'd through
// TestHelperProcess — the standard os/exec self-test pattern.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ntdts/internal/config"
	"ntdts/internal/ntsim/win32"
)

// TestHelperProcess is not a test: when re-exec'd with the env marker it
// becomes the dts CLI, running the args after "--" through run() with
// main()'s exit-code mapping.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("DTS_HELPER_PROCESS") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dts:", err)
		var ee *exitError
		if errors.As(err, &ee) {
			os.Exit(ee.code)
		}
		os.Exit(1)
	}
	os.Exit(0)
}

// dtsChild re-execs this binary as a dts process.
func dtsChild(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], append([]string{"-test.run=TestHelperProcess", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "DTS_HELPER_PROCESS=1")
	return cmd
}

// chaosCampaign writes a ~200-spec config+fault-list pair and returns the
// config path.
func chaosCampaign(t *testing.T, dir string) string {
	t.Helper()
	var entries []config.CatalogEntry
	specCount := 0
	for _, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		entries = append(entries, config.CatalogEntry{Name: e.Name, Params: e.Params})
		specCount += e.Params * 3
		if specCount >= 200 {
			break
		}
	}
	specs := config.GenerateFaultList(entries)
	listPath := filepath.Join(dir, "faults.lst")
	lf, err := os.Create(listPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := config.WriteFaultList(lf, specs); err != nil {
		t.Fatal(err)
	}
	lf.Close()
	cfgPath := filepath.Join(dir, "dts.cfg")
	if err := os.WriteFile(cfgPath, []byte(
		"workload = IIS\nmiddleware = none\nfault_list = "+listPath+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath
}

// goldenArchive runs the campaign journaled and uninterrupted in-process.
func goldenArchive(t *testing.T, dir, cfgPath string) []byte {
	t.Helper()
	outPath := filepath.Join(dir, "golden.json")
	var out bytes.Buffer
	err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-journal", filepath.Join(dir, "golden.journal"), "-parallel", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// waitForJournal polls until the child's journal holds at least minLines
// newline-terminated lines (header + plan + records), i.e. the campaign
// is demonstrably underway.
func waitForJournal(t *testing.T, path string, minLines int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && bytes.Count(data, []byte("\n")) >= minLines {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("journal %s never reached %d lines", path, minLines)
}

// TestChaosKillResume is the PR's headline chaos test: SIGKILL a child
// dts mid-campaign — the one failure no in-process handler can soften —
// then resume from the torn journal and require the final archive to be
// byte-identical to the uninterrupted golden run.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos test")
	}
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := goldenArchive(t, dir, cfgPath)

	jpath := filepath.Join(dir, "killed.journal")
	child := dtsChild("-config", cfgPath, "-out", filepath.Join(dir, "killed.json"),
		"-q", "-journal", jpath, "-parallel", "2")
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	waitForJournal(t, jpath, 20)
	child.Process.Kill() // SIGKILL: no flush, no handler, torn tail likely
	child.Wait()

	outPath := filepath.Join(dir, "resumed.json")
	var out bytes.Buffer
	if err := run([]string{"-resume", jpath, "-out", outPath, "-q"}, &out); err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	resumed, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, resumed) {
		t.Fatal("archive resumed after SIGKILL differs from uninterrupted golden run")
	}
}

// TestChaosSigtermResume: SIGTERM takes the graceful path — the child
// drains its workers, flushes the journal, prints the exact resume
// command, and exits with the dedicated interrupted code. The resumed
// archive must still match the golden run.
func TestChaosSigtermResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos test")
	}
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := goldenArchive(t, dir, cfgPath)

	jpath := filepath.Join(dir, "term.journal")
	var childOut bytes.Buffer
	child := dtsChild("-config", cfgPath, "-out", filepath.Join(dir, "term.json"),
		"-q", "-journal", jpath, "-parallel", "1")
	child.Stdout = &childOut
	child.Stderr = &childOut
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	waitForJournal(t, jpath, 10)
	child.Process.Signal(syscall.SIGTERM)
	err := child.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != exitInterrupted {
		t.Fatalf("SIGTERM exit: %v, want exit code %d\noutput:\n%s", err, exitInterrupted, childOut.String())
	}
	text := childOut.String()
	if !strings.Contains(text, "interrupted:") || !strings.Contains(text, "resume with:") {
		t.Fatalf("interrupt output missing journal/resume lines:\n%s", text)
	}
	if !strings.Contains(text, "dts -resume "+jpath) {
		t.Fatalf("resume hint does not name the journal:\n%s", text)
	}

	outPath := filepath.Join(dir, "term-resumed.json")
	var out bytes.Buffer
	if err := run([]string{"-resume", jpath, "-out", outPath, "-q"}, &out); err != nil {
		t.Fatalf("resume after SIGTERM: %v", err)
	}
	resumed, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, resumed) {
		t.Fatal("archive resumed after SIGTERM differs from uninterrupted golden run")
	}
}
