package main

// dts serve: the long-running campaign service. Instead of one campaign
// per process invocation, a serve instance accepts campaigns over HTTP,
// runs each through the same engine the CLI uses (optionally as a
// work-stealing fleet), streams progress as JSONL, and keeps the
// archive and rendered report available for fetching:
//
//	dts serve -addr 127.0.0.1:8423
//
//	POST /api/campaigns            {"config": "...", "faults": "...",
//	                                "parallel": 2, "workers": "4"}
//	GET  /api/campaigns/{id}        status JSON (state, runs, fleet stats)
//	GET  /api/campaigns/{id}/events progress stream, one JSON line each
//	GET  /api/campaigns/{id}/archive  the results archive JSON
//	GET  /api/campaigns/{id}/report   the rendered text report
//
// The config and fault list travel inline in the submit body, so the
// service needs no shared filesystem with the submitter; "workers"
// takes the -workers syntax (count or host:port list). A campaign that
// finishes by in-process fallback reports state "degraded" — the same
// taxonomy the CLI maps to exit code 5.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"ntdts/internal/config"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/shard"
)

// runServe is the `dts serve` entry point.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dts serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8423", "HTTP listen address")
	workerKey := fs.String("worker-key", "", "shared session key for campaigns dispatched to TCP workers (default $DTS_WORKER_KEY)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cs := newCampaignServer(*workerKey)
	hs := &http.Server{Handler: cs.mux()}
	go func() {
		<-ctx.Done()
		cs.cancelAll()
		hs.Shutdown(context.Background())
	}()
	fmt.Fprintln(out, "dts serve listening on", ln.Addr())
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// submitRequest is the POST /api/campaigns body.
type submitRequest struct {
	// Config is the main configuration text (not a path).
	Config string `json:"config"`
	// Faults, when non-empty, is an inline fault list overriding the
	// config's fault_list path — submitters need no shared filesystem.
	Faults string `json:"faults,omitempty"`
	// Parallel is the per-campaign (or per-worker) pool width.
	Parallel int `json:"parallel,omitempty"`
	// Workers takes the -workers syntax: a count of local worker
	// processes or a comma-separated host:port list.
	Workers string `json:"workers,omitempty"`
	// Telemetry switches trace collection on for this campaign.
	Telemetry bool `json:"telemetry,omitempty"`
}

// servedCampaign is one submitted campaign's lifecycle.
type servedCampaign struct {
	id string

	mu     sync.Mutex
	cond   *sync.Cond
	events [][]byte // progress JSONL, replayed to every events reader
	state  string   // "running", "done", "degraded", "failed"
	errMsg string
	runs   int
	total  int
	stats  *core.DispatchStats

	archive []byte
	report  string
	cancel  context.CancelFunc
}

func (c *servedCampaign) appendEvent(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, append(line, '\n'))
	c.cond.Broadcast()
	c.mu.Unlock()
}

// campaignServer holds every campaign submitted to this serve instance.
type campaignServer struct {
	workerKey string

	mu        sync.Mutex
	seq       int
	campaigns map[string]*servedCampaign
}

func newCampaignServer(workerKey string) *campaignServer {
	return &campaignServer{workerKey: workerKey, campaigns: make(map[string]*servedCampaign)}
}

func (s *campaignServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/campaigns/{id}/archive", s.handleArchive)
	mux.HandleFunc("GET /api/campaigns/{id}/report", s.handleReport)
	return mux
}

// cancelAll stops every running campaign (server shutdown).
func (s *campaignServer) cancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.campaigns {
		c.cancel()
	}
}

func (s *campaignServer) lookup(r *http.Request) *servedCampaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[r.PathValue("id")]
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *campaignServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad submit body: "+err.Error())
		return
	}
	c, err := s.start(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": c.id})
}

// start validates the submission and launches the campaign goroutine.
func (s *campaignServer) start(req submitRequest) (*servedCampaign, error) {
	cfg, err := config.ParseMain(strings.NewReader(req.Config))
	if err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	def, err := cfg.Definition()
	if err != nil {
		return nil, err
	}
	opts := core.DefaultRunnerOptions()
	opts.ServerUpTimeout = cfg.ServerUpTimeout
	opts.RunDeadline = cfg.RunDeadline
	opts.WatchdVersion = cfg.WatchdVersion
	opts.Telemetry.Enabled = req.Telemetry
	runner := core.NewRunner(def, opts)

	copts := []core.Option{core.WithParallelism(req.Parallel)}
	switch {
	case req.Faults != "":
		specs, serr := config.ParseFaultList(strings.NewReader(req.Faults))
		if serr != nil {
			return nil, fmt.Errorf("faults: %v", serr)
		}
		copts = append(copts, core.WithSpecs(specs))
	case cfg.FaultList != "":
		specs, serr := loadFaultList(cfg.FaultList)
		if serr != nil {
			return nil, serr
		}
		copts = append(copts, core.WithSpecs(specs))
	}
	if req.Workers != "" {
		ff := fleetFlags{workers: req.Workers, key: s.workerKey}
		fopts, n, ferr := ff.options(req.Parallel)
		if ferr != nil {
			return nil, ferr
		}
		shards := n
		if shards < 2 {
			shards = 2
		}
		copts = append(copts,
			core.WithShards(shards),
			core.WithShardExecutor(shard.NewFleet(fopts)))
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &servedCampaign{state: "running", cancel: cancel}
	c.cond = sync.NewCond(&c.mu)
	copts = append(copts, core.WithProgress(func(done, total int) {
		c.mu.Lock()
		c.runs, c.total = done, total
		c.mu.Unlock()
		if done%50 == 0 || done == total {
			c.appendEvent(map[string]any{"event": "progress", "done": done, "total": total})
		}
	}))

	s.mu.Lock()
	s.seq++
	c.id = fmt.Sprintf("c%d", s.seq)
	s.campaigns[c.id] = c
	s.mu.Unlock()

	c.appendEvent(map[string]any{"event": "accepted", "id": c.id,
		"workload": def.Name, "supervision": def.Supervision.String()})
	go s.execute(ctx, c, runner, copts)
	return c, nil
}

// execute runs one campaign to completion and freezes its artifacts.
func (s *campaignServer) execute(ctx context.Context, c *servedCampaign, runner *core.Runner, copts []core.Option) {
	set, err := core.NewCampaign(runner, copts...).Run(ctx)

	c.mu.Lock()
	defer func() {
		c.cond.Broadcast()
		c.mu.Unlock()
	}()
	if err != nil {
		c.state, c.errMsg = "failed", err.Error()
		c.appendEventLocked(map[string]any{"event": "failed", "error": err.Error()})
		return
	}
	c.stats = set.Dispatch
	c.state = "done"
	if set.Dispatch != nil && set.Dispatch.Degraded {
		c.state = "degraded"
	}
	var buf bytes.Buffer
	if aerr := (&experiments.Archive{Kind: "set", Set: set}).Save(&buf); aerr == nil {
		c.archive = buf.Bytes()
	}
	var rep bytes.Buffer
	printSetSummary(set, &rep)
	printFleetSummary(set.Dispatch, &rep)
	c.report = rep.String()
	done := map[string]any{"event": c.state, "runs": len(set.Runs)}
	if set.Dispatch != nil {
		done["fleet"] = set.Dispatch
	}
	c.appendEventLocked(done)
}

// appendEventLocked is appendEvent for callers already holding c.mu.
func (c *servedCampaign) appendEventLocked(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.events = append(c.events, append(line, '\n'))
	c.cond.Broadcast()
}

func (s *campaignServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r)
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	c.mu.Lock()
	st := map[string]any{
		"id": c.id, "state": c.state, "runs": c.runs, "total": c.total,
	}
	if c.errMsg != "" {
		st["error"] = c.errMsg
	}
	if c.stats != nil {
		st["fleet"] = c.stats
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// handleEvents streams the campaign's progress as JSONL: every recorded
// event first, then live events until the campaign ends.
func (s *campaignServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r)
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		c.cond.Broadcast() // unpark the wait below when the client leaves
	}()
	i := 0
	for {
		c.mu.Lock()
		for i >= len(c.events) && c.state == "running" && ctx.Err() == nil {
			c.cond.Wait()
		}
		if ctx.Err() != nil {
			c.mu.Unlock()
			return
		}
		var batch [][]byte
		for ; i < len(c.events); i++ {
			batch = append(batch, c.events[i])
		}
		running := c.state == "running"
		c.mu.Unlock()
		for _, line := range batch {
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if !running {
			return
		}
	}
}

func (s *campaignServer) handleArchive(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r)
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	c.mu.Lock()
	archive, state := c.archive, c.state
	c.mu.Unlock()
	if archive == nil {
		httpError(w, http.StatusConflict, "campaign "+state+": no archive yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(archive)
}

func (s *campaignServer) handleReport(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r)
	if c == nil {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	c.mu.Lock()
	report, state := c.report, c.state
	c.mu.Unlock()
	if report == "" {
		httpError(w, http.StatusConflict, "campaign "+state+": no report yet")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, report)
}
