package main

// dts serve self-tests: submit a campaign over HTTP with inline config
// and fault list, stream its progress events, and fetch the archive and
// report — plus the error paths automation keys on.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ntdts/internal/config"
	"ntdts/internal/experiments"
	"ntdts/internal/ntsim/win32"
)

// serveFaultList renders an inline fault list covering roughly n specs.
func serveFaultList(t *testing.T, n int) string {
	t.Helper()
	var entries []config.CatalogEntry
	specCount := 0
	for _, e := range win32.Catalog() {
		if e.Params == 0 {
			continue
		}
		entries = append(entries, config.CatalogEntry{Name: e.Name, Params: e.Params})
		specCount += e.Params * 3
		if specCount >= n {
			break
		}
	}
	var buf bytes.Buffer
	if err := config.WriteFaultList(&buf, config.GenerateFaultList(entries)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// submitCampaign POSTs a campaign and returns its id.
func submitCampaign(t *testing.T, ts *httptest.Server, req submitRequest) string {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %v", resp.StatusCode, e)
	}
	var acc map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if acc["id"] == "" {
		t.Fatal("submit returned no campaign id")
	}
	return acc["id"]
}

// campaignState polls the status endpoint until the campaign leaves
// "running", returning the final status object.
func campaignState(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/api/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		jerr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if jerr != nil {
			t.Fatal(jerr)
		}
		if st["state"] != "running" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("campaign never finished")
	return nil
}

// TestServeCampaignLifecycle drives the whole HTTP surface: submit with
// inline config+faults, stream events to completion, fetch the archive
// (it must parse as a set archive with every run present) and the
// rendered report.
func TestServeCampaignLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	cs := newCampaignServer("")
	ts := httptest.NewServer(cs.mux())
	defer ts.Close()
	defer cs.cancelAll()

	faults := serveFaultList(t, 120)
	id := submitCampaign(t, ts, submitRequest{
		Config:   "workload = IIS\nmiddleware = none\n",
		Faults:   faults,
		Parallel: 2,
	})

	// The events stream replays history and follows the campaign to its
	// terminal event.
	resp, err := http.Get(ts.URL + "/api/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev["event"].(string))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) < 2 || kinds[0] != "accepted" || kinds[len(kinds)-1] != "done" {
		t.Fatalf("event stream = %v, want accepted ... done", kinds)
	}

	st := campaignState(t, ts, id)
	if st["state"] != "done" {
		t.Fatalf("final state = %v, want done", st["state"])
	}
	specs, err := config.ParseFaultList(strings.NewReader(faults))
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := len(specs)

	aresp, err := http.Get(ts.URL + "/api/campaigns/" + id + "/archive")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("archive: status %d", aresp.StatusCode)
	}
	archive, err := experiments.LoadArchive(aresp.Body)
	if err != nil {
		t.Fatalf("archive does not parse: %v", err)
	}
	if archive.Kind != "set" || archive.Set == nil {
		t.Fatalf("archive kind = %q, want a set archive", archive.Kind)
	}
	if got := len(archive.Set.Runs); got != wantRuns {
		t.Fatalf("archive holds %d runs, want %d", got, wantRuns)
	}

	rresp, err := http.Get(ts.URL + "/api/campaigns/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", rresp.StatusCode)
	}
	var rep bytes.Buffer
	rep.ReadFrom(rresp.Body)
	if !strings.Contains(rep.String(), "IIS/none") {
		t.Fatalf("report missing the workload line:\n%s", rep.String())
	}
}

// TestServeFleetCampaignDegraded submits a fleet campaign whose workers
// can never spawn (a dead TCP address): the campaign must still finish
// and surface state "degraded" — the serve-side face of exit code 5.
func TestServeFleetCampaignDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	cs := newCampaignServer("")
	ts := httptest.NewServer(cs.mux())
	defer ts.Close()
	defer cs.cancelAll()

	id := submitCampaign(t, ts, submitRequest{
		Config:   "workload = IIS\nmiddleware = none\n",
		Faults:   serveFaultList(t, 60),
		Parallel: 1,
		Workers:  deadTCPAddr(t),
	})
	st := campaignState(t, ts, id)
	if st["state"] != "degraded" {
		t.Fatalf("final state = %v, want degraded", st["state"])
	}
	fleet, ok := st["fleet"].(map[string]any)
	if !ok || fleet["Degraded"] != true {
		t.Fatalf("status fleet stats = %v, want Degraded true", st["fleet"])
	}
	// Artifacts are still complete on a degraded completion.
	aresp, err := http.Get(ts.URL + "/api/campaigns/" + id + "/archive")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("archive after degraded completion: status %d", aresp.StatusCode)
	}
}

// TestServeErrors covers the machine-readable error paths: bad config,
// unknown campaign, and artifacts requested before completion.
func TestServeErrors(t *testing.T) {
	cs := newCampaignServer("")
	ts := httptest.NewServer(cs.mux())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/campaigns", "application/json",
		strings.NewReader(`{"config": "workload = nonsense\n"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad config: status %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/api/campaigns/nope", "/api/campaigns/nope/events",
		"/api/campaigns/nope/archive", "/api/campaigns/nope/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// deadTCPAddr binds an ephemeral loopback port and frees it: a dial
// target that refuses connections quickly.
func deadTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
