// Command dts is the Dependability Test Suite driver: it runs fault-
// injection campaigns against the simulated NT workloads and writes the
// results archive that dtsreport renders.
//
// Usage:
//
//	dts -config dts.cfg [-out results.json]
//	dts -config dts.cfg -fault "ReadFile 1 1 flip" [-trace]
//	dts -config dts.cfg -cohort "seed=42;class=..." [-workload-trace-out sched.wtrace]
//	dts -config dts.cfg -workload-trace sched.wtrace
//	dts -config dts.cfg -cluster 3 [-routing round-robin|least-loaded|failover]
//	dts -config dts.cfg -middleware watchd-v2
//	dts -replay campaign.journal -middleware watchd-v3 [-out results.json] [-no-elide]
//	dts -experiment table1|figure2|figure5 [-out results.json]
//	dts -conformance [-golden path] [-update] [-sample n] [-seed n]
//	dts ... [-trace-out trace.jsonl] [-metrics] [-trace-cap n]
//	dts -config dts.cfg -workers 4 | -workers h1:9433,h2:9433 [-worker-key k]
//	dts -worker-listen :9433 [-worker-key k]
//	dts serve [-addr host:port] [-worker-key k]
//
// With -config, dts runs a single workload set as configured (workload,
// middleware, fault list). With -fault, dts runs exactly one fault —
// optionally with a kernel trace — which is the §4.3 debugging workflow:
// replay a failure-producing fault and watch what the system did. With
// -experiment, dts runs one of the paper's evaluation campaigns wholesale.
// With -conformance, dts sweeps the whole KERNEL32 catalog through the
// fault set and prints (or checks against a golden file) the per-call
// failure-mode matrix — the API-level companion to the workload campaigns.
//
// -trace-out and -metrics work with every mode: they switch the telemetry
// layer on, collect one recorder per run (so parallel workers never
// contend), and export the merged virtual-time trace (JSONL) and metrics
// summary — byte-identical at any -parallel setting. dtsreport -trace
// summarizes an exported trace.
//
// -shards N fans a campaign out over N worker processes (dts re-executes
// itself with the internal -shard-worker flag); the merged archive,
// trace, and metrics are byte-identical to the unsharded run, and a
// worker that dies mid-shard is respawned with only its remaining specs.
//
// -cohort replaces the canned client with a generated multi-client cohort
// (seeded arrival processes, per-class request mixes — see DESIGN.md §4h);
// the campaign summary then includes a per-class reliability table.
// -workload-trace-out records the generated schedule; -workload-trace
// replays a recorded schedule as the campaign input. Both the spec and the
// trace path ride the journal header, so shard workers and -resume rebuild
// the identical schedule, and archives are byte-identical at any
// -parallel/-shards setting and across record/replay.
//
// -workers runs the campaign as a work-stealing fleet (DESIGN.md §4j):
// workers pull bounded chunks on demand, lost chunks are re-dispatched,
// straggler tails are speculated, and the merged archive is byte-identical
// to an unsharded run under any kill schedule. An integer count spawns
// local worker processes; a host:port list dials `dts -worker-listen`
// hosts over authenticated, reconnect-resumable TCP. A campaign that
// finishes only by in-process fallback (every worker budget exhausted)
// exits 5. `dts serve` exposes the same engine as a long-running HTTP
// service: submit campaigns with config and fault list inline, stream
// progress as JSONL, fetch the archive and report.
//
// -middleware overrides the configured substrate ("none", "watchd",
// "watchd-v1".."v3", "mscs") without editing the config file. With
// -replay it instead names the target substrate: dts re-executes a
// journaled campaign under that substrate, and a divergence oracle
// elides every run whose recorded evidence proves the swap cannot
// change the outcome (DESIGN.md §4k). The output archive is
// byte-identical to a from-scratch campaign under the target;
// -no-elide forces full re-execution (the equivalence baseline), and
// -cluster/-routing override the recorded topology. The final
// "replay:" line is machine-parseable (key=value) for CI gates.
//
// -cluster N runs the workload on an N-node shared-clock cluster behind a
// latency-modeled virtual network; -routing picks how clients choose a
// node (failover, round-robin, least-loaded — see DESIGN.md §4i). Fault
// lists gain an optional node=<i> address and three cluster scenario
// pseudo-faults (DTSClusterNodeCrash, DTSClusterServiceCrash,
// DTSClusterPartition); the summary and dtsreport grow a per-node cluster
// view. The topology rides the journal header, so shard workers rebuild
// it and archives stay byte-identical at any -parallel/-shards setting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"ntdts/internal/apiharness"
	"ntdts/internal/avail"
	"ntdts/internal/config"
	"ntdts/internal/core"
	"ntdts/internal/experiments"
	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/middleware"
	"ntdts/internal/ntsim"
	"ntdts/internal/ntsim/cluster"
	"ntdts/internal/report"
	"ntdts/internal/shard"
	"ntdts/internal/telemetry"
	"ntdts/internal/vclock"
	"ntdts/internal/workload"
	"ntdts/internal/workloadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dts:", err)
		var ee *exitError
		if errors.As(err, &ee) {
			os.Exit(ee.code)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "serve" {
		// Long-running campaign service: submit over HTTP, stream
		// progress, fetch archive and report. See serve.go.
		return runServe(args[1:], out)
	}
	fs := flag.NewFlagSet("dts", flag.ContinueOnError)
	cfgPath := fs.String("config", "", "main configuration file")
	experiment := fs.String("experiment", "", "paper experiment to run: table1, figure2, figure5")
	outPath := fs.String("out", "", "results archive path (overrides config)")
	faultSpec := fs.String("fault", "", `single fault to replay: "Function param invocation type"`)
	trace := fs.Bool("trace", false, "print the kernel trace (with -fault)")
	quiet := fs.Bool("q", false, "suppress progress output")
	parallel := fs.Int("parallel", 0, "concurrent fault-injection runs per campaign (0 = all CPUs, 1 = sequential; results are identical either way)")
	conformance := fs.Bool("conformance", false, "run the catalog-wide API conformance sweep")
	golden := fs.String("golden", "", "golden failure-mode matrix to check the sweep against (with -conformance)")
	update := fs.Bool("update", false, "rewrite the -golden file from live behaviour instead of checking it")
	sample := fs.Int("sample", 0, "run only a seeded sample of n live cells (with -conformance; 0 = full sweep)")
	seed := fs.Int64("seed", 1, "sampling seed (with -conformance -sample; never changes any cell's outcome)")
	traceOut := fs.String("trace-out", "", "write the merged telemetry trace (JSONL, one event per line) to this file")
	metrics := fs.Bool("metrics", false, "print the merged telemetry counters and virtual-time histograms")
	traceCap := fs.Int("trace-cap", 0, "per-run telemetry event-ring capacity (0 = default)")
	journalPath := fs.String("journal", "", "append every completed run to this crash-safe JSONL journal (enables -resume)")
	resume := fs.String("resume", "", "resume an interrupted campaign from its journal (byte-identical to an uninterrupted run)")
	runDeadline := fs.Duration("run-deadline", 0, "wall-clock watchdog per run attempt (0 = off); a hung attempt is abandoned and retried")
	maxQuarantined := fs.Int("max-quarantined", 0, "stop the campaign once this many runs are quarantined (0 = unlimited)")
	retries := fs.Int("retries", 2, "retry budget for indeterminate runs (hang, panic, error) before quarantine")
	chaos := fs.Bool("chaos", false, "recognize the reserved DTSChaos* fault functions and the DTS_SHARD_CHAOS_KILL drill (self-tests)")
	shards := fs.Int("shards", 0, "fan the campaign out over this many worker processes (results byte-identical to unsharded; -parallel then sizes each worker's pool)")
	workers := fs.String("workers", "", `work-stealing campaign fleet: a worker count ("4" spawns local dts workers) or a comma-separated host:port list (dials dts -worker-listen hosts); results byte-identical to unsharded under any kill schedule`)
	workerListen := fs.String("worker-listen", "", "host fleet workers for remote -workers coordinators on this TCP address (long-running; authenticate with -worker-key)")
	workerKey := fs.String("worker-key", "", "shared session key for the -workers/-worker-listen TCP transport (default $DTS_WORKER_KEY)")
	chunk := fs.Int("chunk", 0, "fleet dispatch chunk size (0 = auto; degraded workers receive smaller chunks automatically)")
	shardWorker := fs.Bool("shard-worker", false, "internal: serve one shard assignment on stdin/stdout")
	freshBoot := fs.Bool("fresh-boot", false, "boot a fresh kernel for every run instead of forking the boot-prefix snapshot (slower; archives are byte-identical either way)")
	replayPath := fs.String("replay", "", "re-execute a journaled campaign under the -middleware substrate, eliding runs the recorded evidence proves unaffected (archive byte-identical to a from-scratch run)")
	middlewareSpec := fs.String("middleware", "", `middleware substrate: "none", "watchd", "watchd-v1".."v3" or "mscs" (the -replay target, or a -config override)`)
	noElide := fs.Bool("no-elide", false, "disable the -replay divergence oracle so every run re-executes (the equivalence baseline)")
	clusterN := fs.Int("cluster", 0, "run every fault on an N-node simulated cluster (0 = single host; 1 = single host with DTSCluster* scenario faults enabled; topology rides the journal header so -parallel/-shards/-resume rebuild it)")
	routing := fs.String("routing", "", `client routing policy across -cluster nodes: "failover" (default), "round-robin" or "least-loaded"`)
	cohort := fs.String("cohort", "", `generated multi-client workload: a seeded cohort spec, e.g. "seed=42;class=browser,clients=4,requests=6,arrival=poisson,rate=2,mix=static-115k:3/cgi-1k:1" (same seed, same schedule at any -parallel/-shards)`)
	workloadTrace := fs.String("workload-trace", "", "replay a recorded schedule trace (JSONL) as the client workload instead of the canned client")
	workloadTraceOut := fs.String("workload-trace-out", "", "record the -cohort schedule to this trace file (replayable with -workload-trace)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole command to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (taken after the command finishes) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dts: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dts: -memprofile:", err)
			}
		}()
	}
	if *shardWorker {
		// Worker mode speaks the journal wire protocol and nothing else;
		// the coordinator is the only intended invoker.
		return shard.ServeWorker(os.Stdin, out)
	}
	fflags := fleetFlags{workers: *workers, key: *workerKey, chunk: *chunk, chaos: *chaos}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d)", *parallel)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", *retries)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (got %d)", *shards)
	}

	// SIGINT/SIGTERM cancel this context; the campaign engine converts
	// the cancellation into a graceful stop (supervised campaigns drain,
	// flush the journal, and print the resume command — the coordinator
	// cancels shard workers through the same path).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	progress := func(line string) {
		if !*quiet {
			fmt.Fprintln(out, line)
		}
	}
	if *workerListen != "" {
		if *cfgPath != "" || *experiment != "" || *conformance || fflags.active() {
			return fmt.Errorf("-worker-listen hosts fleet workers for a remote coordinator; run the campaign from the coordinator side")
		}
		return runWorkerListen(ctx, *workerListen, *workerKey, progress)
	}
	tflags := telemetryFlags{traceOut: *traceOut, metrics: *metrics, traceCap: *traceCap}
	sflags := superviseFlags{journal: *journalPath, runDeadline: *runDeadline,
		maxQuarantined: *maxQuarantined, retries: *retries, chaos: *chaos}
	wflags := workloadFlags{cohort: *cohort, trace: *workloadTrace, traceOut: *workloadTraceOut}
	if err := wflags.validate(); err != nil {
		return err
	}
	if wflags.active() && (*experiment != "" || *conformance || *resume != "") {
		return fmt.Errorf("-cohort/-workload-trace drive a -config campaign; they cannot combine with -experiment/-conformance (fixed workloads) or -resume (the journal header already names the schedule)")
	}
	cflags := clusterFlags{nodes: *clusterN, routing: *routing}
	if err := cflags.validate(); err != nil {
		return err
	}
	if cflags.active() && (*experiment != "" || *conformance || *resume != "") {
		return fmt.Errorf("-cluster/-routing configure a -config or -replay campaign; they cannot combine with -experiment/-conformance (fixed topologies) or -resume (the journal header already carries the topology)")
	}

	if *replayPath != "" {
		// Counterfactual replay is its own mode: the journal supplies the
		// campaign, -middleware the target substrate, and -cluster/-routing
		// optionally override the recorded topology. Everything that would
		// change what the journal already fixed is rejected.
		if *cfgPath != "" || *experiment != "" || *conformance || *resume != "" ||
			*faultSpec != "" || *journalPath != "" || *shards > 0 || fflags.active() ||
			*runDeadline > 0 || *maxQuarantined > 0 || wflags.active() {
			return fmt.Errorf("-replay re-executes a journaled campaign under a new -middleware; it combines only with -middleware, -cluster/-routing, -out, -parallel, -no-elide and -q")
		}
		return runReplay(ctx, *replayPath, *middlewareSpec, *outPath, *parallel, *noElide, cflags, progress, out)
	}
	var mwOverride *middleware.Spec
	if *middlewareSpec != "" {
		spec, err := middleware.Parse(*middlewareSpec)
		if err != nil {
			return err
		}
		if *cfgPath == "" {
			return fmt.Errorf("-middleware overrides a -config campaign's substrate (or names the -replay target); add -config or -replay")
		}
		mwOverride = &spec
	}

	if fflags.active() {
		if *shards > 0 {
			return fmt.Errorf("-workers (work-stealing fleet) and -shards (static partitions) are mutually exclusive")
		}
		if *resume != "" || *conformance || *experiment != "" || *faultSpec != "" ||
			*runDeadline > 0 || *maxQuarantined > 0 {
			return fmt.Errorf("-workers runs unsupervised -config campaigns only; drop -resume/-conformance/-experiment/-fault/-run-deadline/-max-quarantined (-journal is allowed: the fleet journals every committed run plus its dispatch provenance)")
		}
	}

	var shardExec core.ShardExecutor
	if *shards > 1 {
		if *resume != "" || *conformance || *faultSpec != "" || *journalPath != "" ||
			*runDeadline > 0 || *maxQuarantined > 0 {
			return fmt.Errorf("-shards runs unsupervised campaigns only; drop -resume/-conformance/-fault/-journal/-run-deadline/-max-quarantined (worker processes already isolate harness faults)")
		}
		sopts := shard.Options{WorkerParallelism: *parallel, Spawn: workerSpawner()}
		if *chaos {
			sopts.ChaosKill = os.Getenv("DTS_SHARD_CHAOS_KILL")
			sopts.ChaosSlow = os.Getenv("DTS_SHARD_CHAOS_SLOW")
		}
		shardExec = shard.New(sopts)
	}

	ecfg := experiments.Config{Progress: progress, Parallelism: *parallel,
		Shards: *shards, ShardExec: shardExec}
	ecfg.Opts.Telemetry = tflags.options()
	ecfg.Opts.FreshBoot = *freshBoot
	if sflags.active() && *shards <= 1 && !fflags.active() {
		opts := sflags.options()
		ecfg.Supervise = &opts
	}

	if *resume != "" {
		if *cfgPath != "" || *experiment != "" || *conformance || *journalPath != "" {
			return fmt.Errorf("-resume takes the campaign from its journal; drop -config/-experiment/-conformance/-journal")
		}
		return runResume(ctx, *resume, *outPath, *parallel, tflags, progress, out)
	}
	if *journalPath != "" && (*experiment != "" || *conformance || *faultSpec != "") {
		return fmt.Errorf("-journal requires a -config campaign (generated or fault-list)")
	}

	switch {
	case *conformance:
		return runConformance(*golden, *update, *sample, *seed, *parallel, tflags, progress, out)
	case *experiment != "":
		return runExperiment(*experiment, *outPath, ecfg, tflags, out)
	case *cfgPath != "" && *faultSpec != "":
		return runSingleFault(*cfgPath, *faultSpec, *trace, *freshBoot, mwOverride, cflags, wflags, tflags, out)
	case *cfgPath != "":
		return runConfigured(ctx, *cfgPath, *outPath, *parallel, *shards, *freshBoot, shardExec, mwOverride, cflags, wflags, tflags, sflags, fflags, progress, out)
	default:
		return fmt.Errorf("one of -config, -experiment or -resume is required")
	}
}

// workerSpawner builds the self-exec spawner for shard workers. Under
// `go test` the binary is the test harness, so workers re-enter through
// TestHelperProcess — the same re-exec pattern the chaos tests use.
func workerSpawner() shard.Spawner {
	if os.Getenv("DTS_HELPER_PROCESS") == "1" {
		return shard.SelfExec("-test.run=TestHelperProcess", "--", "-shard-worker")
	}
	return shard.SelfExec("-shard-worker")
}

// workloadFlags carries the generated-workload flag family: -cohort
// compiles a seeded statistical cohort onto the configured workload,
// -workload-trace replays a recorded schedule instead, and
// -workload-trace-out records the generated schedule for later replay.
type workloadFlags struct {
	cohort   string
	trace    string
	traceOut string
}

// active reports whether the campaign's client is generated rather than
// canned.
func (w workloadFlags) active() bool { return w.cohort != "" || w.trace != "" }

// validate rejects contradictory combinations up front.
func (w workloadFlags) validate() error {
	if w.cohort != "" && w.trace != "" {
		return fmt.Errorf("-cohort and -workload-trace are mutually exclusive (a trace already fixes the schedule)")
	}
	if w.traceOut != "" && w.cohort == "" {
		return fmt.Errorf("-workload-trace-out records a generated schedule; it requires -cohort")
	}
	return nil
}

// apply swaps the definition's canned client for the requested generated
// cohort or replayed trace, recording the -cohort schedule first when
// -workload-trace-out asks for it.
func (w workloadFlags) apply(def workload.Definition) (workload.Definition, error) {
	switch {
	case w.cohort != "":
		spec, err := workloadgen.Parse(w.cohort)
		if err != nil {
			return workload.Definition{}, err
		}
		if w.traceOut != "" {
			sched, serr := spec.Schedule()
			if serr != nil {
				return workload.Definition{}, serr
			}
			if terr := workloadgen.WriteTraceFile(w.traceOut, spec.String(), sched); terr != nil {
				return workload.Definition{}, terr
			}
		}
		return workloadgen.Compile(def, spec)
	case w.trace != "":
		return workloadgen.CompileTrace(def, w.trace)
	default:
		return def, nil
	}
}

// clusterFlags carries the -cluster/-routing pair. Zero nodes is the
// classic single-host suite; the pair rides the journal header so shard
// workers and -resume rebuild the identical topology.
type clusterFlags struct {
	nodes   int
	routing string
}

// active reports whether a cluster topology was requested.
func (c clusterFlags) active() bool { return c.nodes != 0 || c.routing != "" }

// validate rejects bad combinations before any campaign work starts.
func (c clusterFlags) validate() error {
	if c.nodes < 0 {
		return fmt.Errorf("-cluster must be >= 0 (got %d)", c.nodes)
	}
	if c.routing != "" && c.nodes == 0 {
		return fmt.Errorf("-routing selects a policy for a -cluster topology; add -cluster N")
	}
	if _, err := cluster.ParsePolicy(c.routing); err != nil {
		return err
	}
	return nil
}

// config translates the flags into the runner's cluster configuration.
func (c clusterFlags) config() core.ClusterConfig {
	return core.ClusterConfig{Nodes: c.nodes, Routing: c.routing}
}

// telemetryFlags carries the -trace-out/-metrics/-trace-cap triple. Either
// output flag switches collection on; the merged exports are byte-identical
// at any -parallel setting.
type telemetryFlags struct {
	traceOut string
	metrics  bool
	traceCap int
}

// options translates the flags into per-run collection options.
func (t telemetryFlags) options() telemetry.Options {
	return telemetry.Options{Enabled: t.traceOut != "" || t.metrics, TraceCap: t.traceCap}
}

// emit writes the requested telemetry artifacts for a finished command.
func (t telemetryFlags) emit(set *telemetry.Set, out io.Writer) error {
	if set == nil {
		return nil
	}
	if t.traceOut != "" {
		f, err := os.Create(t.traceOut)
		if err != nil {
			return err
		}
		if err := set.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if t.metrics {
		fmt.Fprint(out, "\n", set.MetricsText())
	}
	return nil
}

// runSingleFault replays one fault with full result detail — the paper's
// "individual fault injection runs provide reproducible feedback" workflow.
func runSingleFault(cfgPath, faultSpec string, trace, freshBoot bool, mw *middleware.Spec, cflags clusterFlags, wflags workloadFlags, tflags telemetryFlags, out io.Writer) error {
	f, err := os.Open(cfgPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg, err := config.ParseMain(f)
	if err != nil {
		return err
	}
	applyMiddleware(&cfg, mw)
	def, err := cfg.Definition()
	if err != nil {
		return err
	}
	if def, err = wflags.apply(def); err != nil {
		return err
	}
	specs, err := config.ParseFaultList(strings.NewReader(faultSpec))
	if err != nil || len(specs) != 1 {
		return fmt.Errorf("bad -fault %q (want \"Function param invocation type\")", faultSpec)
	}
	opts := core.DefaultRunnerOptions()
	opts.ServerUpTimeout = cfg.ServerUpTimeout
	opts.RunDeadline = cfg.RunDeadline
	opts.WatchdVersion = cfg.WatchdVersion
	opts.Telemetry = tflags.options()
	opts.FreshBoot = freshBoot
	opts.Cluster = cflags.config()
	if trace {
		opts.Trace = func(at vclock.Time, pid ntsim.PID, msg string) {
			fmt.Fprintf(out, "%-14s pid%-3d %s\n", at, pid, msg)
		}
	}
	res, err := core.NewRunner(def, opts).Run(&specs[0])
	if err != nil {
		return err
	}
	if res.Telemetry != nil {
		if err := tflags.emit(telemetry.NewSet(res.Telemetry), out); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "\nfault:     %s\n", res.Fault.String())
	fmt.Fprintf(out, "workload:  %s/%s\n", def.Name, def.Supervision)
	fmt.Fprintf(out, "activated: %v, injected: %v\n", res.Activated, res.Injected)
	fmt.Fprintf(out, "outcome:   %s\n", res.Outcome)
	fmt.Fprintf(out, "crash:     %v, restarts: %d\n", res.ServerCrash, res.Restarts)
	for _, ns := range res.Nodes {
		fmt.Fprintf(out, "node %d:    restarts %d, failovers %d, events %d, crashed %v\n",
			ns.Node, ns.Restarts, ns.Failovers, ns.Events, ns.Crashed)
	}
	if res.Completed {
		fmt.Fprintf(out, "response:  %.2fs (reply received: %v)\n", res.ResponseSec, res.GotResponse)
	} else {
		fmt.Fprintf(out, "response:  none (client never finished)\n")
	}
	return nil
}

// runConformance sweeps the catalog through the fault set. Without -golden
// the matrix goes to stdout (redirect it to seed a golden file); with
// -golden it is checked — or, with -update, rewritten — so CI can fail on
// any drift between pinned and live failure modes.
func runConformance(golden string, update bool, sample int, seed int64, parallel int, tflags telemetryFlags, progress func(string), out io.Writer) error {
	res, err := apiharness.Sweep(apiharness.Options{
		Seed:        seed,
		Sample:      sample,
		Parallelism: parallel,
		Telemetry:   tflags.options(),
		Progress: func(done, total int) {
			if done%200 == 0 || done == total {
				progress(fmt.Sprintf("%d/%d cells swept", done, total))
			}
		},
	})
	if err != nil {
		return err
	}
	if err := tflags.emit(res.Telemetry, out); err != nil {
		return err
	}
	counts := res.ClassCounts()
	progress(fmt.Sprintf("%d injectable catalog entries (%d live), %d cells: %d error, %d crash, %d hang, %d silent",
		res.InjectableEntries, res.LiveFunctions, len(res.Cells),
		counts["error"], counts["crash"], counts["hang"], counts["silent"]))
	switch {
	case golden == "":
		fmt.Fprint(out, res.Matrix())
	case update:
		if err := res.WriteGolden(golden); err != nil {
			return err
		}
		progress("wrote " + golden)
	default:
		if err := res.CompareGolden(golden); err != nil {
			return err
		}
		progress(golden + " matches live behaviour")
	}
	return nil
}

func runExperiment(name, outPath string, ecfg experiments.Config, tflags telemetryFlags, out io.Writer) error {
	archive := &experiments.Archive{}
	var tset *telemetry.Set
	switch name {
	case "table1":
		res, err := experiments.RunTable1(ecfg)
		if err != nil {
			return err
		}
		archive.Kind, archive.Table1 = "table1", res
		tset = res.Telemetry
		fmt.Fprint(out, report.Table1(res))
	case "figure2":
		exp, err := experiments.RunFigure2(ecfg)
		if err != nil {
			return err
		}
		archive.Kind, archive.Experiment = "figure2", exp
		tset = experiments.MergedTelemetry(exp.Sets)
		fmt.Fprint(out, report.Figure2(exp))
	case "figure5":
		res, err := experiments.RunFigure5(ecfg)
		if err != nil {
			return err
		}
		archive.Kind, archive.Figure5 = "figure5", res
		tset = res.Telemetry
		fmt.Fprint(out, report.Figure5(res))
	default:
		return fmt.Errorf("unknown experiment %q (want table1, figure2 or figure5)", name)
	}
	if err := tflags.emit(tset, out); err != nil {
		return err
	}
	return saveArchive(archive, outPath)
}

func runConfigured(ctx context.Context, cfgPath, outPath string, parallel, shards int, freshBoot bool, shardExec core.ShardExecutor, mw *middleware.Spec, cflags clusterFlags, wflags workloadFlags, tflags telemetryFlags, sflags superviseFlags, fflags fleetFlags, progress func(string), out io.Writer) error {
	f, err := os.Open(cfgPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg, err := config.ParseMain(f)
	if err != nil {
		return err
	}
	applyMiddleware(&cfg, mw)
	def, err := cfg.Definition()
	if err != nil {
		return err
	}
	if def, err = wflags.apply(def); err != nil {
		return err
	}
	opts := core.DefaultRunnerOptions()
	opts.ServerUpTimeout = cfg.ServerUpTimeout
	opts.RunDeadline = cfg.RunDeadline
	opts.WatchdVersion = cfg.WatchdVersion
	opts.Telemetry = tflags.options()
	opts.FreshBoot = freshBoot
	opts.Cluster = cflags.config()
	runner := core.NewRunner(def, opts)
	if outPath == "" {
		outPath = cfg.Results
	}

	var fleetJW *journal.Writer
	if fflags.active() {
		// The fleet replaces both the static executor and the
		// supervisor: worker processes isolate harness faults, and the
		// journal (when requested) records committed runs plus the
		// dispatch provenance trail.
		fopts, n, ferr := fflags.options(parallel)
		if ferr != nil {
			return ferr
		}
		if sflags.journal != "" {
			fleetJW, ferr = journal.Create(sflags.journal, journalHeader(cfg, def, opts, tflags, sflags))
			if ferr != nil {
				return ferr
			}
			fopts.Journal = fleetJW
		}
		shardExec = shard.NewFleet(fopts)
		if shards = n; shards < 2 {
			shards = 2 // engage the executor; FleetOptions sizes the fleet
		}
	}

	var sup *core.Supervisor
	if sflags.active() && shards <= 1 && !fflags.active() {
		sup = core.NewSupervisor(sflags.options())
		if sflags.journal != "" {
			jw, jerr := journal.Create(sflags.journal, journalHeader(cfg, def, opts, tflags, sflags))
			if jerr != nil {
				return jerr
			}
			sup.AttachJournal(jw)
		}
	}

	copts := []core.Option{
		core.WithParallelism(parallel),
		core.WithProgress(campaignProgress(progress)),
		core.WithSupervision(sup),
		core.WithShards(shards),
		core.WithShardExecutor(shardExec),
	}
	if cfg.FaultList != "" {
		specs, serr := loadFaultList(cfg.FaultList)
		if serr != nil {
			return serr
		}
		copts = append(copts, core.WithSpecs(specs))
	}
	set, err := core.NewCampaign(runner, copts...).Run(ctx)
	if sup == nil {
		if fleetJW != nil {
			if serr := fleetJW.Sync(); serr != nil && err == nil {
				err = serr
			}
			fleetJW.Close()
		}
		if err != nil {
			return err
		}
		printSetSummary(set, out)
		printFleetSummary(set.Dispatch, out)
		if err := tflags.emit(set.Telemetry, out); err != nil {
			return err
		}
		if err := saveSet(set, outPath); err != nil {
			return err
		}
		// A degraded completion exits with its own code: the results
		// are complete, but the fleet did not survive as a fleet.
		return fleetExit(set.Dispatch)
	}
	hint := resumeCommand(sflags.journal, outPath, parallel, tflags)
	return finishSupervised(set, err, outPath, sup, hint, tflags, out)
}

// applyMiddleware rewrites the configured substrate from a -middleware
// override, with the same semantics as the config file's "middleware"
// key: an unpinned "watchd" keeps the configured (or default) watchd
// generation.
func applyMiddleware(cfg *config.Main, mw *middleware.Spec) {
	if mw == nil {
		return
	}
	cfg.Middleware = mw.Supervision
	if mw.WatchdVersion != 0 {
		cfg.WatchdVersion = mw.WatchdVersion
	}
}

// campaignProgress adapts the line-oriented progress sink to the
// campaign's (done, total) callback.
func campaignProgress(progress func(string)) func(done, total int) {
	return func(done, total int) {
		if done%100 == 0 || done == total {
			progress(fmt.Sprintf("%d/%d faults injected", done, total))
		}
	}
}

// printSetSummary renders the distribution and top-failure view of a
// finished (or partial) set.
func printSetSummary(set *core.SetResult, out io.Writer) {
	d := set.Distribution()
	fmt.Fprintf(out, "\n%s/%s: %d activated functions, %d injected faults\n",
		set.Workload, set.Supervision, set.ActivatedFns, d.Total)
	for _, o := range core.AllOutcomes() {
		fmt.Fprintf(out, "  %-22s %5d (%.1f%%)\n", o, d.Counts[o.String()], d.Pct[o.String()])
	}
	fmt.Fprint(out, "\n", report.TopFailures(set, 20))
	if perClass := report.PerClass(set, avail.EstimateClasses(set, avail.DefaultAssumptions())); perClass != "" {
		fmt.Fprint(out, "\n", perClass)
	}
	if clusterView := report.Cluster(set); clusterView != "" {
		fmt.Fprint(out, "\n", clusterView)
	}
}

// saveSet archives one workload set.
func saveSet(set *core.SetResult, path string) error {
	return saveArchive(&experiments.Archive{Kind: "set", Set: set}, path)
}

// loadFaultList parses an explicit fault-list file — campaigns with a
// fault_list run those specs verbatim instead of the generated catalog
// sweep.
func loadFaultList(path string) ([]inject.FaultSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return config.ParseFaultList(f)
}

func saveArchive(a *experiments.Archive, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return a.Save(f)
}
