package main

// Sharded-execution self-tests: the coordinator in this process spawns
// real dts worker processes (this test binary re-exec'd through
// TestHelperProcess, exactly like the chaos tests) and the merged
// archive must be byte-identical to the unsharded run — including after
// a worker SIGKILLs itself mid-shard and its remainder is re-dispatched.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// unshardedArchive runs the campaign unsharded in-process.
func unshardedArchive(t *testing.T, dir, cfgPath string) []byte {
	t.Helper()
	outPath := filepath.Join(dir, "unsharded.json")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", outPath, "-q", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedArchiveMatchesUnsharded fans the 200-spec campaign out over
// four real worker processes and byte-compares the merged archive with
// the unsharded run.
func TestShardedArchiveMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec shard test")
	}
	t.Setenv("DTS_HELPER_PROCESS", "1") // workerSpawner re-enters via TestHelperProcess
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := unshardedArchive(t, dir, cfgPath)

	outPath := filepath.Join(dir, "sharded.json")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-shards", "4", "-parallel", "1"}, &out); err != nil {
		t.Fatalf("sharded campaign: %v", err)
	}
	sharded, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, sharded) {
		t.Fatal("archive from dts -shards 4 differs from the unsharded run")
	}
}

// TestShardedWorkerSigkillRedispatch is the tentpole failure drill: one
// worker SIGKILLs itself mid-shard (the DTS_SHARD_CHAOS_KILL hook behind
// -chaos), the coordinator keeps its streamed prefix, re-dispatches only
// the remaining specs to a fresh worker, and the merged archive still
// byte-matches the unsharded run.
func TestShardedWorkerSigkillRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec shard test")
	}
	t.Setenv("DTS_HELPER_PROCESS", "1")
	t.Setenv("DTS_SHARD_CHAOS_KILL", "1:5") // shard 1's first worker dies after 5 records
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	golden := unshardedArchive(t, dir, cfgPath)

	outPath := filepath.Join(dir, "chaos-sharded.json")
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", outPath, "-q",
		"-shards", "4", "-chaos"}, &out); err != nil {
		t.Fatalf("sharded campaign with killed worker: %v", err)
	}
	sharded, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, sharded) {
		t.Fatal("archive after worker SIGKILL + re-dispatch differs from the unsharded run")
	}
}

// TestShardsFlagValidation: -shards campaigns are unsupervised by
// design; the conflicting flag families must fail fast with a clear
// message, and negative counts are rejected.
func TestShardsFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-config", cfgPath, "-shards", "4", "-journal", filepath.Join(dir, "j")},
		{"-config", cfgPath, "-shards", "4", "-run-deadline", "1s"},
		{"-config", cfgPath, "-shards", "4", "-max-quarantined", "3"},
		{"-config", cfgPath, "-shards", "2", "-fault", "ReadFile 0 1 zero"},
	} {
		err := run(args, &out)
		if err == nil || !strings.Contains(err.Error(), "-shards") {
			t.Errorf("%v: err = %v, want a -shards conflict", args[2:], err)
		}
	}
	if err := run([]string{"-config", cfgPath, "-shards", "-1"}, &out); err == nil {
		t.Error("negative -shards accepted")
	}
}

// TestShardChaosEnvGating proves the DTS_SHARD_CHAOS_KILL plumbing: a
// malformed spec is a hard error when -chaos arms it — so the kill drill
// demonstrably reaches the coordinator — and inert without -chaos.
func TestShardChaosEnvGating(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec shard test")
	}
	t.Setenv("DTS_HELPER_PROCESS", "1")
	t.Setenv("DTS_SHARD_CHAOS_KILL", "bogus")
	dir := t.TempDir()
	cfgPath := chaosCampaign(t, dir)
	var out bytes.Buffer
	err := run([]string{"-config", cfgPath, "-q", "-shards", "2", "-chaos"}, &out)
	if err == nil || !strings.Contains(err.Error(), "chaos kill spec") {
		t.Fatalf("armed bogus chaos spec: err = %v, want a parse error", err)
	}
	if err := run([]string{"-config", cfgPath, "-q", "-shards", "2"}, &out); err != nil {
		t.Fatalf("unarmed chaos env must be ignored: %v", err)
	}
}
