package main

// The -workers flag family: work-stealing campaign fleets. Where
// -shards K partitions the job list up front, -workers runs the
// failure-adaptive dispatcher — bounded chunks on demand, lost chunks
// re-dispatched, straggler tails speculated, and in-process completion
// (exit code 5) when every worker budget is exhausted.
//
//	dts -config dts.cfg -workers 4            # 4 self-exec workers
//	dts -config dts.cfg -workers h1:9433,h2:9433  # TCP workers
//	dts -worker-listen :9433                  # host workers for the above
//
// TCP fleets authenticate with a shared key (-worker-key or
// DTS_WORKER_KEY) and survive connection drops by replaying the
// journal-line streams from the acknowledged offsets.

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"

	"ntdts/internal/core"
	"ntdts/internal/shard"
)

// fleetFlags carries the work-stealing fleet flag family.
type fleetFlags struct {
	workers string // "" = off; integer count or comma-separated host:port list
	key     string // shared TCP session key ("" = DTS_WORKER_KEY)
	chunk   int    // chunk size override (0 = auto)
	chaos   bool   // arm the DTS_SHARD_CHAOS_* drills
}

// active reports whether a fleet was requested.
func (f fleetFlags) active() bool { return f.workers != "" }

// sessionKey resolves the shared TCP key.
func (f fleetFlags) sessionKey() string {
	if f.key != "" {
		return f.key
	}
	return os.Getenv("DTS_WORKER_KEY")
}

// options translates the flags into FleetOptions plus the worker count.
// An integer -workers spawns that many local dts worker processes; a
// comma-separated host:port list dials one TCP session per address.
func (f fleetFlags) options(parallel int) (shard.FleetOptions, int, error) {
	opts := shard.FleetOptions{
		WorkerParallelism: parallel,
		ChunkSize:         f.chunk,
	}
	if f.chaos {
		opts.ChaosKill = os.Getenv("DTS_SHARD_CHAOS_KILL")
		opts.ChaosHang = os.Getenv("DTS_SHARD_CHAOS_HANG")
		opts.ChaosSlow = os.Getenv("DTS_SHARD_CHAOS_SLOW")
	}
	if n, err := strconv.Atoi(f.workers); err == nil {
		if n < 1 {
			return opts, 0, fmt.Errorf("-workers must be >= 1 (got %d)", n)
		}
		opts.Workers = n
		opts.Spawn = workerSpawner()
		return opts, n, nil
	}
	key := f.sessionKey()
	for _, addr := range strings.Split(f.workers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return opts, 0, fmt.Errorf("-workers %q: %q is neither a worker count nor host:port", f.workers, addr)
		}
		opts.Spawners = append(opts.Spawners, shard.TCPSpawner(addr, key, shard.TCPOptions{}))
	}
	if len(opts.Spawners) == 0 {
		return opts, 0, fmt.Errorf("-workers %q names no workers", f.workers)
	}
	return opts, len(opts.Spawners), nil
}

// printFleetSummary renders the dispatch statistics under the campaign
// summary — a clean fleet run and a degraded one read differently on
// purpose.
func printFleetSummary(st *core.DispatchStats, out io.Writer) {
	if st == nil {
		return
	}
	fmt.Fprintf(out, "\nfleet: %d workers (%s), %d chunks, %d redispatched, %d speculated, %d worker deaths, %d slots lost\n",
		st.Workers, st.Transport, st.Chunks, st.Redispatched, st.Speculated, st.WorkerDeaths, st.WorkersLost)
	if st.Degraded {
		fmt.Fprintf(out, "fleet: DEGRADED — %d runs finished in-process after worker budgets were exhausted\n", st.LocalRuns)
	}
}

// fleetExit maps a degraded fleet completion to its dedicated exit
// code; a clean completion exits 0.
func fleetExit(st *core.DispatchStats) error {
	if st == nil || !st.Degraded {
		return nil
	}
	return &exitError{code: exitDegraded,
		msg: fmt.Sprintf("campaign completed degraded: %d runs in-process after worker budgets exhausted (results are still complete and byte-identical)", st.LocalRuns)}
}

// runWorkerListen hosts fleet workers for remote coordinators until the
// context (SIGINT/SIGTERM) ends it — the long-running host half of
// -workers host:port.
func runWorkerListen(ctx context.Context, addr, key string, progress func(string)) error {
	if key == "" {
		key = os.Getenv("DTS_WORKER_KEY")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := shard.NewWorkerServer(key, workerSpawner())
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	if key == "" {
		progress("worker server listening on " + ln.Addr().String() + " (UNAUTHENTICATED: set -worker-key or DTS_WORKER_KEY)")
	} else {
		progress("worker server listening on " + ln.Addr().String())
	}
	return srv.Serve(ln)
}
