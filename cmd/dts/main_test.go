package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntdts/internal/experiments"
	"ntdts/internal/telemetry"
)

func TestRunRequiresMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "figure9"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTable1Experiment(t *testing.T) {
	dir := t.TempDir()
	archivePath := filepath.Join(dir, "t1.json")
	var out bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-out", archivePath, "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatalf("output missing table:\n%s", out.String())
	}
	f, err := os.Open(archivePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := experiments.LoadArchive(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != "table1" || a.Table1.Counts["IIS"]["none"] != 76 {
		t.Fatalf("archive %+v", a.Kind)
	}
}

func TestRunConfiguredWithFaultList(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "dts.cfg")
	listPath := filepath.Join(dir, "faults.lst")
	archivePath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(cfgPath, []byte(
		"workload = IIS\nmiddleware = watchd\nfault_list = "+listPath+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(listPath, []byte(
		"# two faults\nReadFile 1 1 flip\nGetVersionExA 0 1 zero\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-out", archivePath, "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IIS/watchd") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
	f, err := os.Open(archivePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := experiments.LoadArchive(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != "set" || len(a.Set.Runs) != 2 {
		t.Fatalf("archive kind %q with %d runs", a.Kind, len(a.Set.Runs))
	}
	// The flipped ReadFile buffer pointer must have crashed the server.
	crashed := false
	for _, r := range a.Set.Runs {
		if r.Fault.Function == "ReadFile" && r.ServerCrash {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("fault-list run did not record the expected crash")
	}
}

// TestRunParallelFlag runs the same fault list sequentially and with the
// worker pool; the archives must be byte-identical (the engine's
// deterministic-ordering guarantee surfaces at the CLI).
func TestRunParallelFlag(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "dts.cfg")
	listPath := filepath.Join(dir, "faults.lst")
	if err := os.WriteFile(cfgPath, []byte(
		"workload = IIS\nmiddleware = none\nfault_list = "+listPath+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(listPath, []byte(
		"ReadFile 1 1 flip\nGetVersionExA 0 1 zero\nCreateFileA 0 1 ones\nWriteFile 2 1 flip\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	archive := func(parallel string) []byte {
		path := filepath.Join(dir, "out-"+parallel+".json")
		var out bytes.Buffer
		if err := run([]string{"-config", cfgPath, "-out", path, "-q", "-parallel", parallel}, &out); err != nil {
			t.Fatalf("-parallel %s: %v", parallel, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if seq, par := archive("1"), archive("4"); !bytes.Equal(seq, par) {
		t.Fatal("parallel archive differs from sequential archive")
	}
}

func TestRunRejectsNegativeParallel(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-parallel", "-3"}, &out); err == nil {
		t.Fatal("negative -parallel accepted")
	}
}

func TestRunBadConfigPath(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-config", "/nonexistent/dts.cfg"}, &out); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestRunSingleFaultWithTrace(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "dts.cfg")
	if err := os.WriteFile(cfgPath, []byte(
		"workload = SQL\nmiddleware = watchd\nwatchd_version = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-config", cfgPath, "-fault", "ReadFileEx 2 1 zero", "-trace"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"fault:     ReadFileEx p2 i1 zero",
		"workload:  SQL/watchd",
		"outcome:   failure",
		"spawn image=sqlservr.exe", // the kernel trace
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunSingleFaultBadSpec(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "dts.cfg")
	os.WriteFile(cfgPath, []byte("workload = IIS\n"), 0o644)
	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath, "-fault", "not a spec at all extra"}, &out); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// TestRunConformanceSampled checks the -conformance mode end to end on a
// seeded sample: matrix lines on stdout, each matching the golden grammar.
func TestRunConformanceSampled(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-conformance", "-sample", "25", "-seed", "3", "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 25 {
		t.Fatalf("%d matrix lines, want 25:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, " -> ") || !strings.Contains(line, " p") {
			t.Fatalf("malformed matrix line %q", line)
		}
	}
}

// TestRunConformanceGoldenRoundTrip: -update writes a golden file a
// subsequent check run accepts, and a corrupted golden fails the check.
func TestRunConformanceGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "matrix.golden")
	var out bytes.Buffer
	if err := run([]string{"-conformance", "-sample", "15", "-golden", golden, "-update", "-q"}, &out); err == nil {
		t.Fatal("-update accepted a sampled sweep; the golden file must stay complete")
	}
	if err := run([]string{"-conformance", "-golden", golden, "-update", "-q"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-conformance", "-golden", golden, "-sample", "20", "-q"}, &out); err != nil {
		t.Fatalf("fresh golden rejected: %v", err)
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(golden, bytes.Replace(data, []byte(" -> "), []byte(" -> not-"), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-conformance", "-golden", golden, "-sample", "0", "-q"}, &out); err == nil {
		t.Fatal("corrupted golden accepted")
	}
}

// TestRunTraceOutAndMetrics exercises the telemetry flags end to end on a
// fault-list campaign: -trace-out writes a parseable JSONL trace covering
// every run, -metrics prints the merged summary, and both artifacts are
// byte-identical across worker counts.
func TestRunTraceOutAndMetrics(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "dts.cfg")
	listPath := filepath.Join(dir, "faults.lst")
	if err := os.WriteFile(cfgPath, []byte(
		"workload = IIS\nmiddleware = none\nfault_list = "+listPath+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(listPath, []byte(
		"ReadFile 1 1 flip\nGetVersionExA 0 1 zero\nCreateFileA 0 1 ones\nWriteFile 2 1 flip\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runOnce := func(parallel string) (trace []byte, metrics string) {
		tracePath := filepath.Join(dir, "trace-"+parallel+".jsonl")
		var out bytes.Buffer
		args := []string{"-config", cfgPath, "-q", "-parallel", parallel,
			"-out", filepath.Join(dir, "out-"+parallel+".json"),
			"-trace-out", tracePath, "-metrics"}
		if err := run(args, &out); err != nil {
			t.Fatalf("-parallel %s: %v", parallel, err)
		}
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		i := strings.Index(out.String(), "runs ")
		if i < 0 {
			t.Fatalf("-metrics output missing summary:\n%s", out.String())
		}
		return data, out.String()[i:]
	}
	seqTrace, seqMetrics := runOnce("1")
	parTrace, parMetrics := runOnce("4")
	if !bytes.Equal(seqTrace, parTrace) {
		t.Fatal("trace differs between -parallel 1 and -parallel 4")
	}
	if seqMetrics != parMetrics {
		t.Fatalf("metrics differ between worker counts:\n%s\nvs\n%s", seqMetrics, parMetrics)
	}

	lines, err := telemetry.ReadJSONL(bytes.NewReader(seqTrace))
	if err != nil {
		t.Fatal(err)
	}
	runs := make(map[int]bool)
	for _, l := range lines {
		runs[l.Run] = true
	}
	// Calibration plus four fault runs.
	if len(runs) != 5 {
		t.Fatalf("trace covers %d runs, want 5", len(runs))
	}
	if !strings.Contains(seqMetrics, "fault.injected") ||
		!strings.Contains(seqMetrics, "syscall.dispatch") {
		t.Fatalf("metrics summary missing counters:\n%s", seqMetrics)
	}
}

// TestRunSingleFaultTelemetry: the single-fault replay honours the
// telemetry flags too, with the run exported at index 0.
func TestRunSingleFaultTelemetry(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "dts.cfg")
	tracePath := filepath.Join(dir, "one.jsonl")
	if err := os.WriteFile(cfgPath, []byte("workload = IIS\nmiddleware = none\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-config", cfgPath, "-fault", "ReadFile 1 1 flip",
		"-trace-out", tracePath, "-metrics"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	for _, l := range lines {
		if l.Run != 0 {
			t.Fatalf("single-fault trace has run index %d", l.Run)
		}
		if l.Event.Kind == telemetry.KindFaultInjected {
			injected = true
		}
	}
	if !injected {
		t.Fatal("trace missing the fault-injected event")
	}
	if !strings.Contains(out.String(), "fault.injected") {
		t.Fatalf("-metrics output missing fault counters:\n%s", out.String())
	}
}

// TestRunConformanceTelemetry: the conformance sweep exports one telemetry
// run per cell, stable across worker counts.
func TestRunConformanceTelemetry(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(parallel string) []byte {
		tracePath := filepath.Join(dir, "conf-"+parallel+".jsonl")
		var out bytes.Buffer
		args := []string{"-conformance", "-sample", "20", "-q", "-parallel", parallel,
			"-trace-out", tracePath}
		if err := run(args, &out); err != nil {
			t.Fatalf("-parallel %s: %v", parallel, err)
		}
		data, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if seq, par := runOnce("1"), runOnce("4"); !bytes.Equal(seq, par) {
		t.Fatal("conformance trace differs between worker counts")
	}
}
