package main

// Campaign supervision in the CLI: the -journal/-resume/-run-deadline/
// -max-quarantined/-retries/-chaos flag family, SIGINT/SIGTERM handling
// that flushes the journal and prints the exact resume command, and the
// distinct exit codes automation keys on.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"ntdts/internal/config"
	"ntdts/internal/core"
	"ntdts/internal/inject"
	"ntdts/internal/journal"
	"ntdts/internal/report"
	"ntdts/internal/shard"
	"ntdts/internal/workload"
)

// Exit codes beyond the generic 1: automation around long campaigns
// distinguishes "interrupted, resume me" from "degraded past the
// quarantine budget, inspect me".
const (
	exitInterrupted      = 3
	exitQuarantineBudget = 4
	// exitDegraded: a -workers fleet campaign completed — results are
	// full and byte-identical — but only by falling back to in-process
	// execution after every worker budget was exhausted.
	exitDegraded = 5
)

// exitError carries a specific process exit code out of run().
type exitError struct {
	code int
	msg  string
}

func (e *exitError) Error() string { return e.msg }

// superviseFlags carries the supervisor flag family.
type superviseFlags struct {
	journal        string
	runDeadline    time.Duration // wall-clock watchdog per attempt
	maxQuarantined int
	retries        int
	chaos          bool
}

// active reports whether any supervision was requested. The retry count
// alone does not activate the supervisor: retries only matter once a
// watchdog, journal, quarantine budget or chaos hook is in play.
func (s superviseFlags) active() bool {
	return s.journal != "" || s.runDeadline > 0 || s.maxQuarantined > 0 || s.chaos
}

// options translates the flags into the supervisor policy.
func (s superviseFlags) options() core.SupervisorOptions {
	return core.SupervisorOptions{
		WallDeadline:   s.runDeadline,
		MaxAttempts:    s.retries + 1,
		MaxQuarantined: s.maxQuarantined,
		Chaos:          s.chaos,
	}
}

// journalHeader records everything a resume needs to rebuild this
// campaign from the journal alone.
func journalHeader(cfg config.Main, def workload.Definition, opts core.RunnerOptions, tflags telemetryFlags, sflags superviseFlags) journal.Header {
	h := journal.Header{
		Workload:          def.Name,
		Supervision:       def.Supervision.String(),
		ServerUpTimeoutNS: int64(opts.ServerUpTimeout),
		RunDeadlineNS:     int64(opts.RunDeadline),
		Telemetry:         opts.Telemetry.Enabled,
		TraceCapacity:     opts.Telemetry.TraceCap,
		FreshBoot:         opts.FreshBoot,
		FaultList:         cfg.FaultList,
		WallDeadlineNS:    int64(sflags.runDeadline),
		MaxAttempts:       sflags.retries + 1,
		MaxQuarantined:    sflags.maxQuarantined,
		Chaos:             sflags.chaos,
	}
	if def.Supervision == workload.Watchd {
		h.WatchdVersion = int(opts.WatchdVersion)
	}
	h.Cohort = def.Cohort
	h.WorkloadTrace = def.WorkloadTrace
	h.ClusterNodes = opts.Cluster.Nodes
	h.ClusterRouting = opts.Cluster.Routing
	return h
}

// resumeCommand renders the exact command that continues an interrupted
// campaign — printed on interrupt so the operator can paste it.
func resumeCommand(jpath, outPath string, parallel int, tflags telemetryFlags) string {
	var b strings.Builder
	b.WriteString("dts -resume ")
	b.WriteString(jpath)
	if parallel != 0 {
		fmt.Fprintf(&b, " -parallel %d", parallel)
	}
	if outPath != "" {
		b.WriteString(" -out ")
		b.WriteString(outPath)
	}
	if tflags.traceOut != "" {
		b.WriteString(" -trace-out ")
		b.WriteString(tflags.traceOut)
	}
	if tflags.metrics {
		b.WriteString(" -metrics")
	}
	return b.String()
}

// finishSupervised is the single exit path of every supervised (and
// unsupervised configured) campaign: flush and close the journal, map
// supervisor stop causes to their exit codes, render the quarantine
// report, emit telemetry, and save the archive.
func finishSupervised(set *core.SetResult, runErr error, savePath string, sup *core.Supervisor, resumeHint string, tflags telemetryFlags, out io.Writer) error {
	var jw *journal.Writer
	if sup != nil {
		jw = sup.Journal()
	}
	if jw != nil {
		defer jw.Close()
		if err := jw.Sync(); err != nil && runErr == nil {
			return err
		}
	}
	if runErr != nil {
		var budget *core.QuarantineBudgetError
		switch {
		case errors.Is(runErr, core.ErrInterrupted):
			if jw != nil {
				fmt.Fprintf(out, "\ninterrupted: %d runs journaled to %s\nresume with:\n  %s\n",
					jw.Records(), jw.Path(), resumeHint)
			} else {
				fmt.Fprintf(out, "\ninterrupted (no -journal: progress lost)\n")
			}
			return &exitError{code: exitInterrupted, msg: "campaign interrupted"}
		case errors.As(runErr, &budget):
			if set != nil {
				printSetSummary(set, out)
				fmt.Fprint(out, "\n", report.Quarantine(set.Quarantined))
				if err := tflags.emit(set.Telemetry, out); err != nil {
					return err
				}
				if err := saveSet(set, savePath); err != nil {
					return err
				}
				fmt.Fprintf(out, "\npartial results: campaign stopped, %s\n", runErr)
			}
			return &exitError{code: exitQuarantineBudget, msg: runErr.Error()}
		default:
			return runErr
		}
	}
	printSetSummary(set, out)
	if len(set.Quarantined) != 0 {
		fmt.Fprint(out, "\n", report.Quarantine(set.Quarantined))
	}
	if err := tflags.emit(set.Telemetry, out); err != nil {
		return err
	}
	return saveSet(set, savePath)
}

// runResume continues an interrupted journaled campaign: replay the
// journal, truncate its torn tail, rebuild the runner from the header,
// and execute the remaining runs — completed runs replay from the
// journal, so the final results are byte-identical to an uninterrupted
// campaign at any -parallel setting.
func runResume(ctx context.Context, jpath, outPath string, parallel int, tflags telemetryFlags, progress func(string), out io.Writer) error {
	rep, err := journal.Replay(jpath)
	if err != nil {
		return err
	}
	h := rep.Header
	if h.Telemetry != tflags.options().Enabled {
		if h.Telemetry {
			return fmt.Errorf("journal %s collected telemetry; resume with -trace-out and/or -metrics", jpath)
		}
		return fmt.Errorf("journal %s collected no telemetry; -trace-out/-metrics cannot be added on resume", jpath)
	}
	sup, runner, err := resumeSupervisor(rep)
	if err != nil {
		return err
	}
	if rep.Torn {
		progress("discarded torn final journal record")
	}
	jw, err := journal.Append(jpath, rep.ValidBytes, rep.Records)
	if err != nil {
		return err
	}
	sup.AttachJournal(jw)
	progress(fmt.Sprintf("resuming %s/%s from %s: %d runs journaled",
		h.Workload, h.Supervision, jpath, rep.Records))

	copts := []core.Option{
		core.WithParallelism(parallel),
		core.WithProgress(campaignProgress(progress)),
		core.WithSupervision(sup),
	}
	if h.FaultList != "" {
		specs, serr := planSpecs(rep)
		if serr != nil {
			return serr
		}
		copts = append(copts, core.WithSpecs(specs))
	}
	set, err := core.NewCampaign(runner, copts...).Run(ctx)
	hint := resumeCommand(jpath, outPath, parallel, tflags)
	return finishSupervised(set, err, outPath, sup, hint, tflags, out)
}

// resumeSupervisor rebuilds the runner and supervisor a journal header
// describes. The runner half is shared with shard workers, which receive
// the same header as their assignment.
func resumeSupervisor(rep *journal.Replayed) (*core.Supervisor, *core.Runner, error) {
	h := rep.Header
	runner, err := shard.RunnerFromHeader(h)
	if err != nil {
		return nil, nil, err
	}
	sup := core.NewSupervisor(core.SupervisorOptions{
		WallDeadline:   time.Duration(h.WallDeadlineNS),
		MaxAttempts:    h.MaxAttempts,
		MaxQuarantined: h.MaxQuarantined,
		Chaos:          h.Chaos,
	})
	sup.LoadResume(rep)
	return sup, runner, nil
}

// planSpecs rebuilds a fault-list campaign's spec list from the
// journaled plan — the journal is self-contained; the original fault
// list file is not needed to resume.
func planSpecs(rep *journal.Replayed) ([]inject.FaultSpec, error) {
	if rep.Plan == nil {
		return nil, fmt.Errorf("journal %s has no plan record; nothing to resume — rerun the campaign", rep.Header.FaultList)
	}
	specs := make([]inject.FaultSpec, len(rep.Plan.Jobs))
	for i, key := range rep.Plan.Jobs {
		s, err := inject.ParseKey(strings.TrimSuffix(key, "/probe"))
		if err != nil {
			return nil, fmt.Errorf("journal plan job %d: %w", i, err)
		}
		specs[i] = s
	}
	return specs, nil
}
