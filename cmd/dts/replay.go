package main

// The counterfactual replay mode: re-execute a journaled campaign under
// an alternative middleware substrate (DESIGN.md §4k). The divergence
// oracle elides every run whose recorded evidence proves the substrate
// swap cannot change the outcome; the archive is byte-identical to a
// from-scratch campaign under the target.

import (
	"context"
	"fmt"
	"io"

	"ntdts/internal/middleware"
	"ntdts/internal/replay"
)

func runReplay(ctx context.Context, journalPath, target, outPath string, parallel int, noElide bool, cflags clusterFlags, progress func(string), out io.Writer) error {
	if target == "" {
		return fmt.Errorf("-replay needs -middleware naming the target substrate (none, watchd-v1, watchd-v2, watchd-v3 or mscs)")
	}
	spec, err := middleware.Parse(target)
	if err != nil {
		return err
	}
	src, err := replay.Load(journalPath)
	if err != nil {
		return err
	}
	srcSpec, err := src.SourceSpec()
	if err != nil {
		return err
	}
	opts := replay.Options{
		Target:      spec,
		Parallelism: parallel,
		NoElide:     noElide,
		Progress:    campaignProgress(progress),
	}
	if cflags.active() {
		cc := cflags.config()
		opts.Cluster = &cc
	}
	c, oracle, err := replay.Build(src, opts)
	if err != nil {
		return err
	}
	progress(fmt.Sprintf("replaying %s: %s -> %s (%d recorded runs)",
		journalPath, srcSpec, spec, len(src.Runs)))
	set, err := c.Run(ctx)
	if err != nil {
		return err
	}
	printSetSummary(set, out)
	st := oracle.Stats()
	// One machine-parseable line for CI gates and scripts.
	fmt.Fprintf(out, "\nreplay: source=%s target=%s total=%d elided=%d fault-free=%d copied=%d executed=%d elision-rate=%.3f\n",
		srcSpec, spec, st.Total, st.Elided, st.FaultFree, st.Copied, st.Executed, st.Rate())
	return saveSet(set, outPath)
}
