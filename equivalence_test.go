// End-to-end engine-equivalence oracle: the snapshot-fork run engine
// must produce archives byte-identical to the legacy fresh-boot engine
// through every execution topology — sequential, worker pools, and the
// multi-process shard fan-out. The per-package tests pin the same
// property at the runner and campaign layers; this test pins it at the
// outermost layer users see (the archive the dts binary writes).
package ntdts_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"ntdts/internal/core"
	"ntdts/internal/shard"
	"ntdts/internal/workload"
)

// TestEngineEquivalence runs one full Apache1 standalone campaign per
// execution topology and compares archive bytes against the fresh-boot
// sequential baseline.
func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign equivalence sweep is slow")
	}

	campaign := func(t *testing.T, freshBoot bool, parallel, shards int) []byte {
		t.Helper()
		opts := []core.Option{core.WithParallelism(parallel)}
		if freshBoot {
			opts = append(opts, core.WithFreshBoot())
		}
		if shards > 1 {
			opts = append(opts,
				core.WithShards(shards),
				core.WithShardExecutor(shard.New(shard.Options{WorkerParallelism: 1})))
		}
		set, err := core.NewCampaign(
			core.NewRunner(workload.NewApache1(workload.Standalone), core.RunnerOptions{}),
			opts...).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(set)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	baseline := campaign(t, true, 1, 1)

	for _, tc := range []struct {
		name             string
		parallel, shards int
	}{
		{"sequential", 1, 1},
		{"parallel-4", 4, 1},
		{"parallel-16", 16, 1},
		{"shards-4", 1, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := campaign(t, false, tc.parallel, tc.shards)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("snapshot-fork archive (%s) diverges from fresh-boot baseline: %d vs %d bytes",
					tc.name, len(got), len(baseline))
			}
		})
	}
}
