module ntdts

go 1.22
